package policy

import (
	"sort"

	"ibasec/internal/enforce"
)

// PartitionMember is one end port's membership in a compiled partition.
type PartitionMember struct {
	Node int
	Full bool
}

// Partition is a compiled partition: members in ascending node order,
// each with its membership class (a node selected as both full and
// limited compiles to full).
type Partition struct {
	Base    uint16
	Members []PartitionMember
}

// SwitchIntent is the complete enforcement state one switch must hold:
// its mode, valid-P_Key table (full 16-bit entries, ascending), Table 2
// model size, pinned Invalid_P_Key_Table bases (ascending), registered
// alternate-path source LIDs (ascending), and whether SIF filtering is
// active at bring-up. The drift auditor treats Valid as exact — any
// extra or missing entry is drift — and Invalid/AltSources as minimums,
// because the running SIF control loop legitimately adds entries the
// policy never declared.
type SwitchIntent struct {
	Switch       int
	Mode         enforce.Mode
	Valid        []uint16
	ModelEntries int
	Invalid      []uint16
	AltSources   []uint16
	Active       bool
}

// Digests returns the intent's three audit fingerprints in the order
// the AuditState SMP carries them.
func (si *SwitchIntent) Digests() (valid, invalid, alt uint32) {
	return enforce.Digest16(si.Valid), enforce.Digest16(si.Invalid), enforce.Digest16(si.AltSources)
}

// Intent is a compiled policy document: the exact per-device state the
// programmer installs and the auditor verifies. Partitions are in
// ascending base order and Switches in ascending switch order, so two
// compilations of the same document are deep-equal.
type Intent struct {
	Mode       enforce.Mode
	Partitions []Partition
	Switches   []SwitchIntent
}

// Switch returns the intent for one switch, or nil.
func (in *Intent) Switch(sw int) *SwitchIntent {
	for i := range in.Switches {
		if in.Switches[i].Switch == sw {
			return &in.Switches[i]
		}
	}
	return nil
}

// Compile validates doc and lowers it to per-device intent for a subnet
// of numNodes end ports (node i attached to switch i). DPT switches get
// their own copy of the subnet-wide table — per the paper's Duplicate
// Partition Table design — sized at Table 2's n×p model cost; IF and
// SIF switches get the attached node's partition set at cost p.
func Compile(doc *Document, numNodes int) (*Intent, error) {
	if err := doc.Validate(numNodes); err != nil {
		return nil, err
	}
	intent := &Intent{Mode: doc.Mode}

	// Partitions: expand port ranges, full membership winning.
	memberOf := make([]map[uint16]bool, numNodes) // node -> bases
	totalMemberships := 0
	allBases := make([]uint16, 0, len(doc.Rules))
	for _, r := range doc.Rules {
		full := make(map[int]bool)
		lim := make(map[int]bool)
		for _, pr := range r.Full {
			for n := pr.First; n <= pr.Last; n++ {
				full[n] = true
			}
		}
		for _, pr := range r.Limited {
			for n := pr.First; n <= pr.Last; n++ {
				if !full[n] {
					lim[n] = true
				}
			}
		}
		part := Partition{Base: r.Base}
		for n := 0; n < numNodes; n++ {
			if !full[n] && !lim[n] {
				continue
			}
			part.Members = append(part.Members, PartitionMember{Node: n, Full: full[n]})
			if memberOf[n] == nil {
				memberOf[n] = make(map[uint16]bool)
			}
			memberOf[n][r.Base] = true
			totalMemberships++
		}
		intent.Partitions = append(intent.Partitions, part)
		allBases = append(allBases, r.Base)
	}
	sort.Slice(intent.Partitions, func(i, j int) bool {
		return intent.Partitions[i].Base < intent.Partitions[j].Base
	})
	sort.Slice(allBases, func(i, j int) bool { return allBases[i] < allBases[j] })

	// The subnet-wide table every DPT switch duplicates: full-membership
	// entries, one per partition (the switch check only needs the base;
	// the full bit lets limited members' packets through, IBA 10.9.3).
	union := make([]uint16, len(allBases))
	for i, b := range allBases {
		union[i] = 0x8000 | b
	}

	for sw := 0; sw < numNodes; sw++ {
		si := SwitchIntent{Switch: sw, Mode: doc.EffectiveMode(sw)}
		switch si.Mode {
		case enforce.DPT:
			si.Valid = append([]uint16(nil), union...)
			si.ModelEntries = totalMemberships
		case enforce.IF, enforce.SIF:
			for b := range memberOf[sw] {
				si.Valid = append(si.Valid, 0x8000|b)
			}
			sort.Slice(si.Valid, func(i, j int) bool { return si.Valid[i] < si.Valid[j] })
			si.ModelEntries = len(si.Valid)
		}
		if si.Mode == enforce.SIF {
			pinned := make(map[uint16]bool)
			for _, p := range doc.Pinned {
				if p.Switch == sw || p.Switch == -1 {
					pinned[p.Base] = true
				}
			}
			for b := range pinned {
				si.Invalid = append(si.Invalid, b)
			}
			sort.Slice(si.Invalid, func(i, j int) bool { return si.Invalid[i] < si.Invalid[j] })
			si.Active = len(si.Invalid) > 0
		}
		alt := make(map[uint16]bool)
		for _, a := range doc.AltSources {
			if a.Switch == sw {
				alt[a.Src] = true
			}
		}
		for s := range alt {
			si.AltSources = append(si.AltSources, s)
		}
		sort.Slice(si.AltSources, func(i, j int) bool { return si.AltSources[i] < si.AltSources[j] })
		intent.Switches = append(intent.Switches, si)
	}
	return intent, nil
}
