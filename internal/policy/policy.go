// Package policy is the declarative security-policy plane: a single
// validated document describes the subnet's intended partition layout
// (P_Key ranges, full/limited membership), per-switch enforcement modes,
// pinned Invalid_P_Key_Table entries and alternate-path source
// registrations. The compiler lowers the document into per-device intent
// (internal/enforce switch tables, HCA partition tables), the programmer
// applies that intent through the Subnet Manager, and the drift auditor
// continuously verifies the fabric against it with in-band audit SMPs
// (internal/sm audit attributes), repairing divergence entry by entry.
//
// The paper's section 3.3 designs (DPT/IF/SIF) configure switches
// imperatively at bring-up and then trust them; the policy plane makes
// the intended state first-class so corruption of switch state — the
// Table 3 threat of an attacker with management access — is detected and
// reversed instead of persisting silently.
package policy

import (
	"fmt"

	"ibasec/internal/enforce"
)

// PortRange selects a contiguous range of end-port (node) indices,
// inclusive on both ends. A single node is First == Last.
type PortRange struct {
	First, Last int
}

// Rule declares one partition: its 15-bit P_Key base and the end ports
// that join with full and limited membership (IBA 10.9.3: two limited
// members cannot communicate). A node selected by both lists is full.
type Rule struct {
	// Name identifies the rule in diagnostics; unique per document.
	Name string
	// Base is the partition's 15-bit P_Key base value.
	Base uint16
	// Full and Limited select member end ports by node index.
	Full    []PortRange
	Limited []PortRange
}

// PinnedInvalid pre-registers a P_Key base in a switch's
// Invalid_P_Key_Table at bring-up, arming SIF filtering against a known
// hostile key before any trap fires. Switch -1 pins at every switch
// whose effective mode is SIF.
type PinnedInvalid struct {
	Switch int
	Base   uint16
}

// AltSourceReg registers a source LID as a legitimate user of
// alternate-path addresses through one switch (the APM source-identity
// state of internal/enforce).
type AltSourceReg struct {
	Switch int
	Src    uint16
}

// SwitchMode overrides the document-wide enforcement mode for one
// switch.
type SwitchMode struct {
	Switch int
	Mode   enforce.Mode
}

// Document is a complete declarative security policy for one subnet.
type Document struct {
	// Version is the document schema version; currently 1.
	Version int
	// Mode is the subnet-wide enforcement design; SwitchModes override
	// it per switch.
	Mode        enforce.Mode
	Rules       []Rule
	Pinned      []PinnedInvalid
	AltSources  []AltSourceReg
	SwitchModes []SwitchMode
}

// CurrentVersion is the schema version this package compiles.
const CurrentVersion = 1

// EffectiveMode returns the enforcement mode switch sw operates under.
func (d *Document) EffectiveMode(sw int) enforce.Mode {
	for _, o := range d.SwitchModes {
		if o.Switch == sw {
			return o.Mode
		}
	}
	return d.Mode
}

// Validate checks the document against a subnet of numNodes end ports
// (one switch per node, the testbed topology). It is the only gate
// between a policy author and the fabric, so it rejects everything the
// compiler would otherwise have to guess about.
func (d *Document) Validate(numNodes int) error {
	if numNodes <= 0 {
		return fmt.Errorf("policy: subnet has %d nodes", numNodes)
	}
	if d.Version != CurrentVersion {
		return fmt.Errorf("policy: unsupported document version %d", d.Version)
	}
	if d.Mode < enforce.NoFiltering || d.Mode > enforce.SIF {
		return fmt.Errorf("policy: unknown enforcement mode %d", int(d.Mode))
	}
	if len(d.Rules) == 0 {
		return fmt.Errorf("policy: document declares no partitions")
	}

	seenName := make(map[string]bool, len(d.Rules))
	seenBase := make(map[uint16]bool, len(d.Rules))
	checkRanges := func(rule string, rs []PortRange) (int, error) {
		members := 0
		for _, r := range rs {
			if r.First < 0 || r.Last >= numNodes || r.First > r.Last {
				return 0, fmt.Errorf("policy: rule %q selects ports [%d,%d] outside [0,%d]",
					rule, r.First, r.Last, numNodes-1)
			}
			members += r.Last - r.First + 1
		}
		return members, nil
	}
	for _, r := range d.Rules {
		if r.Name == "" {
			return fmt.Errorf("policy: rule with empty name")
		}
		if seenName[r.Name] {
			return fmt.Errorf("policy: duplicate rule name %q", r.Name)
		}
		seenName[r.Name] = true
		if r.Base == 0 || r.Base >= 0x8000 {
			return fmt.Errorf("policy: rule %q base %#x outside (0, 0x8000)", r.Name, r.Base)
		}
		if seenBase[r.Base] {
			return fmt.Errorf("policy: P_Key base %#x declared twice", r.Base)
		}
		seenBase[r.Base] = true
		nf, err := checkRanges(r.Name, r.Full)
		if err != nil {
			return err
		}
		nl, err := checkRanges(r.Name, r.Limited)
		if err != nil {
			return err
		}
		if nf+nl == 0 {
			return fmt.Errorf("policy: rule %q has no members", r.Name)
		}
	}

	seenOverride := make(map[int]bool, len(d.SwitchModes))
	for _, o := range d.SwitchModes {
		if o.Switch < 0 || o.Switch >= numNodes {
			return fmt.Errorf("policy: mode override for switch %d outside [0,%d]", o.Switch, numNodes-1)
		}
		if o.Mode < enforce.NoFiltering || o.Mode > enforce.SIF {
			return fmt.Errorf("policy: switch %d override to unknown mode %d", o.Switch, int(o.Mode))
		}
		if seenOverride[o.Switch] {
			return fmt.Errorf("policy: switch %d has two mode overrides", o.Switch)
		}
		seenOverride[o.Switch] = true
	}

	anySIF := false
	for sw := 0; sw < numNodes; sw++ {
		if d.EffectiveMode(sw) == enforce.SIF {
			anySIF = true
			break
		}
	}
	for _, p := range d.Pinned {
		if p.Switch < -1 || p.Switch >= numNodes {
			return fmt.Errorf("policy: pinned invalid at switch %d outside [-1,%d]", p.Switch, numNodes-1)
		}
		if p.Base == 0 || p.Base >= 0x8000 {
			return fmt.Errorf("policy: pinned invalid base %#x outside (0, 0x8000)", p.Base)
		}
		if seenBase[p.Base] {
			return fmt.Errorf("policy: pinned invalid base %#x is also a declared partition", p.Base)
		}
		if p.Switch == -1 {
			if !anySIF {
				return fmt.Errorf("policy: subnet-wide pinned invalid %#x but no switch runs SIF", p.Base)
			}
		} else if d.EffectiveMode(p.Switch) != enforce.SIF {
			return fmt.Errorf("policy: pinned invalid %#x at switch %d, which is not SIF", p.Base, p.Switch)
		}
	}

	for _, a := range d.AltSources {
		if a.Switch < 0 || a.Switch >= numNodes {
			return fmt.Errorf("policy: alt-source registration at switch %d outside [0,%d]", a.Switch, numNodes-1)
		}
		if a.Src == 0 {
			return fmt.Errorf("policy: alt-source registration with LID 0 at switch %d", a.Switch)
		}
	}
	return nil
}
