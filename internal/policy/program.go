package policy

import (
	"fmt"

	"ibasec/internal/enforce"
	"ibasec/internal/keys"
	"ibasec/internal/packet"
	"ibasec/internal/sm"
	"ibasec/internal/topology"
)

// Program compiles doc and brings the subnet to its intent: partitions
// are created through the Subnet Manager (so secret generation, HA
// state sync and rotation all see them exactly as imperatively created
// ones), limited memberships are downgraded on the member HCAs, and
// every switch's enforcement state is installed from the compiled
// intent. The manager is left holding the marshalled document
// (PolicyBlob, synced to HA standbys) and a ProgramTables hook that
// reapplies the compiled switch state — so a post-failover reprogram
// restores intent rather than re-deriving tables from membership.
func Program(doc *Document, manager *sm.SubnetManager, mesh *topology.Mesh, filter *enforce.Filter, mkey keys.MKey) (*Intent, error) {
	intent, err := Compile(doc, mesh.NumNodes())
	if err != nil {
		return nil, err
	}
	for _, part := range intent.Partitions {
		fullKey := packet.PKey(0x8000 | part.Base)
		nodes := make([]int, len(part.Members))
		for i, m := range part.Members {
			nodes[i] = m.Node
		}
		if err := manager.CreatePartition(mkey, fullKey, nodes); err != nil {
			return nil, fmt.Errorf("policy: creating partition %#x: %w", part.Base, err)
		}
		for _, m := range part.Members {
			if m.Full {
				continue
			}
			// CreatePartition added the full entry; overwrite with the
			// limited one (PartitionTable.Add replaces the membership bit).
			if err := mesh.HCA(m.Node).PKeyTable.Add(packet.PKey(part.Base)); err != nil {
				return nil, fmt.Errorf("policy: limiting node %d in %#x: %w", m.Node, part.Base, err)
			}
		}
	}
	Apply(intent, mesh, filter)
	manager.PolicyBlob = Marshal(doc)
	manager.ProgramTables = func() { Apply(intent, mesh, filter) }
	return intent, nil
}

// Apply installs the compiled switch enforcement state. Every switch
// gets its own table instance — even under DPT, where the imperative
// path shares one — so state corruption and repair stay local to one
// switch, matching real hardware. Apply is idempotent and additive on
// the SIF side: reapplying restores pinned invalid entries and
// re-activates filtering without erasing registrations the running SIF
// control loop added meanwhile.
func Apply(intent *Intent, mesh *topology.Mesh, filter *enforce.Filter) {
	if filter == nil {
		return
	}
	for i := range intent.Switches {
		si := &intent.Switches[i]
		sw := mesh.Switches[si.Switch]
		filter.SetSwitchMode(sw, si.Mode)
		if si.Mode != enforce.NoFiltering {
			tbl := keys.NewPartitionTable(0)
			for _, v := range si.Valid {
				if err := tbl.Add(packet.PKey(v)); err != nil {
					panic(err) // compiled tables are far below the IBA limit
				}
			}
			filter.SetSwitchTable(sw, tbl, si.ModelEntries)
		}
		for _, b := range si.Invalid {
			filter.RegisterInvalid(sw, packet.PKey(b))
		}
		for _, src := range si.AltSources {
			filter.RegisterAltSource(sw, packet.LID(src))
		}
	}
}
