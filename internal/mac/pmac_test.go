package mac

import (
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPMACBasics(t *testing.T) {
	a := NewPMAC()
	if a.ID() != IDPMAC || a.Name() != "PMAC-AES128" {
		t.Fatalf("identity: %d %s", a.ID(), a.Name())
	}
	if a.ForgeryProb() != 1.0/(1<<32) {
		t.Fatal("forgery probability")
	}
	tag, err := a.Tag(key16, []byte("hello"), 7)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := Verify(a, key16, []byte("hello"), 7, tag)
	if err != nil || !ok {
		t.Fatalf("verify: %v %v", ok, err)
	}
}

func TestPMACKeySize(t *testing.T) {
	if _, err := NewPMAC().Tag(make([]byte, 8), []byte("m"), 0); err == nil {
		t.Fatal("accepted short key")
	}
}

func TestPMACSensitivity(t *testing.T) {
	a := NewPMAC()
	// Block-boundary sizes: empty, partial, exactly one block (with the
	// 8-byte nonce prefix, msg of 8 bytes fills block 1), multi-block.
	for _, n := range []int{0, 1, 7, 8, 9, 24, 40, 100, 1024} {
		msg := make([]byte, n)
		for i := range msg {
			msg[i] = byte(i)
		}
		base, err := a.Tag(key16, msg, 1)
		if err != nil {
			t.Fatal(err)
		}
		// Nonce sensitivity.
		other, _ := a.Tag(key16, msg, 2)
		if other == base {
			t.Fatalf("len %d: nonce ignored", n)
		}
		// Key sensitivity.
		k2 := append([]byte(nil), key16...)
		k2[3] ^= 1
		kt, _ := a.Tag(k2, msg, 1)
		if kt == base {
			t.Fatalf("len %d: key ignored", n)
		}
		if n == 0 {
			continue
		}
		for _, flip := range []int{0, n / 2, n - 1} {
			m2 := append([]byte(nil), msg...)
			m2[flip] ^= 0x40
			tag, _ := a.Tag(key16, m2, 1)
			if tag == base {
				t.Fatalf("len %d: flip at %d ignored", n, flip)
			}
		}
		// Zero-extension must change the tag (10* padding + lInv
		// distinction between full and partial final blocks).
		ext, _ := a.Tag(key16, append(append([]byte(nil), msg...), 0), 1)
		if ext == base {
			t.Fatalf("len %d: zero extension collided", n)
		}
	}
}

func TestPMACDeterministicAcrossInstances(t *testing.T) {
	a1, a2 := NewPMAC(), NewPMAC()
	msg := []byte("same input, same tag")
	t1, _ := a1.Tag(key16, msg, 3)
	t2, _ := a2.Tag(key16, msg, 3)
	if t1 != t2 {
		t.Fatal("instances disagree")
	}
}

func TestPMACRegistryIntegration(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(NewPMAC()); err != nil {
		t.Fatal(err)
	}
	a, ok := r.Lookup(IDPMAC)
	if !ok || a.Name() != "PMAC-AES128" {
		t.Fatal("registry lookup failed")
	}
}

// GF(2^128) doubling/halving must be inverse operations and linear.
func TestGFDoubleHalveInverse(t *testing.T) {
	f := func(raw [16]byte) bool {
		if gfHalve(gfDouble(raw)) != raw {
			return false
		}
		return gfDouble(gfHalve(raw)) == raw
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestGFDoubleLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 100; i++ {
		var a, b, ab [16]byte
		rng.Read(a[:])
		rng.Read(b[:])
		for j := range ab {
			ab[j] = a[j] ^ b[j]
		}
		da, db, dab := gfDouble(a), gfDouble(b), gfDouble(ab)
		for j := range dab {
			if dab[j] != da[j]^db[j] {
				t.Fatal("doubling not linear over XOR")
			}
		}
	}
}

// Empirical distribution sanity, as for UMAC.
func TestPMACBitBalance(t *testing.T) {
	a := NewPMAC()
	rng := rand.New(rand.NewSource(22))
	const trials = 1000
	var ones [32]int
	for i := 0; i < trials; i++ {
		msg := make([]byte, 24)
		rng.Read(msg)
		tag, _ := a.Tag(key16, msg, uint64(i))
		for b := 0; b < 32; b++ {
			if tag>>uint(b)&1 == 1 {
				ones[b]++
			}
		}
	}
	for b, c := range ones {
		if c < trials/3 || c > 2*trials/3 {
			t.Fatalf("bit %d biased: %d/%d", b, c, trials)
		}
	}
}

// Cross-check the offset schedule: tags over messages that differ only in
// block order must differ (PMAC is not a plain XOR of block hashes).
func TestPMACBlockOrderMatters(t *testing.T) {
	a := NewPMAC()
	m1 := make([]byte, 48)
	m2 := make([]byte, 48)
	for i := range m1 {
		m1[i] = byte(i)
	}
	// Swap the first two 16-byte blocks (after the nonce prefix the
	// alignment differs, but any reordering must still change the tag).
	copy(m2[0:16], m1[16:32])
	copy(m2[16:32], m1[0:16])
	copy(m2[32:], m1[32:])
	t1, _ := a.Tag(key16, m1, 1)
	t2, _ := a.Tag(key16, m2, 1)
	if t1 == t2 {
		t.Fatal("block reordering undetected")
	}
}

func TestPMACNonceAsUint(t *testing.T) {
	a := NewPMAC()
	msg := []byte("x")
	var nb [8]byte
	binary.BigEndian.PutUint64(nb[:], 0x1122334455667788)
	t1, _ := a.Tag(key16, msg, 0x1122334455667788)
	// Manually prepending the nonce and using nonce 0 is NOT the same
	// construction; just assert determinism here.
	t2, _ := a.Tag(key16, msg, 0x1122334455667788)
	if t1 != t2 {
		t.Fatal("non-deterministic")
	}
}

func BenchmarkPMAC_188B(b *testing.B)  { benchAuth(b, NewPMAC(), 188) }
func BenchmarkPMAC_1024B(b *testing.B) { benchAuth(b, NewPMAC(), 1024) }
