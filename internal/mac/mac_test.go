package mac

import (
	"crypto/hmac"
	"crypto/md5"
	"crypto/sha1"
	"encoding/binary"
	"math/rand"
	"testing"
)

var key16 = []byte("0123456789abcdef")

func allAuths() []Authenticator {
	return []Authenticator{NewHMACMD5(), NewHMACSHA1(), NewUMAC32(), NewTruncatedUMAC(64)}
}

func TestIDsAndNames(t *testing.T) {
	want := map[string]uint8{
		"HMAC-MD5":         IDHMACMD5,
		"HMAC-SHA1":        IDHMACSHA1,
		"UMAC-32":          IDUMAC32,
		"UMAC-32/prefix64": IDTruncUMAC,
	}
	for _, a := range allAuths() {
		if want[a.Name()] != a.ID() {
			t.Errorf("%s: ID = %d, want %d", a.Name(), a.ID(), want[a.Name()])
		}
	}
	if NewCRC32().ID() != IDNone {
		t.Error("CRC baseline must use ID 0")
	}
}

func TestTagVerifyRoundTrip(t *testing.T) {
	msg := []byte("an IBA packet's invariant bytes")
	for _, a := range allAuths() {
		tag, err := a.Tag(key16, msg, 7)
		if err != nil {
			t.Fatalf("%s: %v", a.Name(), err)
		}
		ok, err := Verify(a, key16, msg, 7, tag)
		if err != nil || !ok {
			t.Fatalf("%s: Verify = %v, %v", a.Name(), ok, err)
		}
		// Tampered message must fail.
		m2 := append([]byte(nil), msg...)
		m2[0] ^= 1
		ok, err = Verify(a, key16, m2, 7, tag)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			t.Fatalf("%s: verified tampered message", a.Name())
		}
		// Wrong key must fail.
		k2 := append([]byte(nil), key16...)
		k2[5] ^= 1
		ok, _ = Verify(a, k2, msg, 7, tag)
		if ok {
			t.Fatalf("%s: verified under wrong key", a.Name())
		}
		// Wrong nonce must fail (replay defense hook).
		ok, _ = Verify(a, key16, msg, 8, tag)
		if ok {
			t.Fatalf("%s: verified under wrong nonce", a.Name())
		}
	}
}

func TestHMACMatchesStdlibComposition(t *testing.T) {
	// Our HMAC tags must be the first 4 bytes of HMAC(key, nonce||msg).
	msg := []byte("check composition")
	nonce := uint64(99)
	var nb [8]byte
	binary.BigEndian.PutUint64(nb[:], nonce)

	for _, tc := range []struct {
		a   Authenticator
		ref func() []byte
	}{
		{NewHMACMD5(), func() []byte {
			m := hmac.New(md5.New, key16)
			m.Write(nb[:])
			m.Write(msg)
			return m.Sum(nil)
		}},
		{NewHMACSHA1(), func() []byte {
			m := hmac.New(sha1.New, key16)
			m.Write(nb[:])
			m.Write(msg)
			return m.Sum(nil)
		}},
	} {
		got, err := tc.a.Tag(key16, msg, nonce)
		if err != nil {
			t.Fatal(err)
		}
		if want := binary.BigEndian.Uint32(tc.ref()[:4]); got != want {
			t.Fatalf("%s: tag %#x, want %#x", tc.a.Name(), got, want)
		}
	}
}

func TestHMACEmptyKeyRejected(t *testing.T) {
	if _, err := NewHMACMD5().Tag(nil, []byte("m"), 0); err == nil {
		t.Fatal("HMAC accepted empty key")
	}
}

func TestUMACKeySizeEnforced(t *testing.T) {
	if _, err := NewUMAC32().Tag(make([]byte, 8), []byte("m"), 0); err == nil {
		t.Fatal("UMAC accepted 8-byte key")
	}
}

func TestUMACKeyCache(t *testing.T) {
	a := NewUMAC32()
	msg := []byte("cached key path")
	t1, err := a.Tag(key16, msg, 3)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := a.Tag(key16, msg, 3) // second call hits the cache
	if err != nil {
		t.Fatal(err)
	}
	if t1 != t2 {
		t.Fatal("cache changed tag value")
	}
}

// The truncated variant must ignore changes beyond its prefix — that is
// the documented trade-off of the paper's section-7 fast mode.
func TestTruncatedUMACPrefixSemantics(t *testing.T) {
	a := NewTruncatedUMAC(16)
	msg := make([]byte, 64)
	base, _ := a.Tag(key16, msg, 1)
	m2 := append([]byte(nil), msg...)
	m2[40] ^= 0xFF // beyond prefix: undetected by design
	tag, _ := a.Tag(key16, m2, 1)
	if tag != base {
		t.Fatal("truncated UMAC digested beyond its prefix")
	}
	m3 := append([]byte(nil), msg...)
	m3[4] ^= 0xFF // inside prefix: must detect
	tag3, _ := a.Tag(key16, m3, 1)
	if tag3 == base {
		t.Fatal("truncated UMAC missed change inside prefix")
	}
	if a.ForgeryProb() != 1.0 {
		t.Fatal("truncated UMAC must report forgery probability 1 beyond prefix")
	}
}

func TestTruncatedUMACPanicsOnBadPrefix(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewTruncatedUMAC(0)
}

// CRC's defining weakness (Table 4, forgery probability 1): anyone can
// recompute a valid tag for a forged message without any key.
func TestCRCForgeable(t *testing.T) {
	a := NewCRC32()
	forged := []byte("attacker-chosen payload")
	tag, err := a.Tag(nil, forged, 0) // no key needed
	if err != nil {
		t.Fatal(err)
	}
	ok, _ := Verify(a, nil, forged, 0, tag)
	if !ok {
		t.Fatal("CRC recomputation failed")
	}
	if a.ForgeryProb() != 1.0 {
		t.Fatal("CRC must report forgery probability 1")
	}
}

func TestForgeryProbOrdering(t *testing.T) {
	crc := NewCRC32().ForgeryProb()
	um := NewUMAC32().ForgeryProb()
	h1 := NewHMACSHA1().ForgeryProb()
	if !(h1 < um && um < crc) {
		t.Fatalf("forgery ordering wrong: sha1=%v umac=%v crc=%v", h1, um, crc)
	}
	if um != 1.0/(1<<30) || h1 != 1.0/(1<<32) {
		t.Fatalf("forgery constants drifted: umac=%v hmac=%v", um, h1)
	}
}

// Random forged tags should almost never verify: empirical forgery check.
func TestRandomForgeryRejected(t *testing.T) {
	a := NewUMAC32()
	msg := []byte("protect me")
	rng := rand.New(rand.NewSource(17))
	real, _ := a.Tag(key16, msg, 5)
	hits := 0
	for i := 0; i < 10000; i++ {
		guess := rng.Uint32()
		if guess == real {
			hits++
		}
	}
	if hits > 1 {
		t.Fatalf("%d/10000 random guesses matched a 32-bit tag", hits)
	}
}

func TestRegistry(t *testing.T) {
	r := DefaultRegistry()
	ids := r.IDs()
	if len(ids) != 3 {
		t.Fatalf("IDs = %v", ids)
	}
	for _, id := range []uint8{IDHMACMD5, IDHMACSHA1, IDUMAC32} {
		a, ok := r.Lookup(id)
		if !ok || a.ID() != id {
			t.Fatalf("Lookup(%d) = %v, %v", id, a, ok)
		}
	}
	if _, ok := r.Lookup(200); ok {
		t.Fatal("Lookup of unregistered ID succeeded")
	}
	if err := r.Register(NewUMAC32()); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if err := r.Register(NewCRC32()); err == nil {
		t.Fatal("registration under ID 0 accepted")
	}
	r2 := NewRegistry()
	if err := r2.Register(NewTruncatedUMAC(32)); err != nil {
		t.Fatal(err)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := DefaultRegistry()
	done := make(chan bool, 8)
	for i := 0; i < 8; i++ {
		go func() {
			for j := 0; j < 100; j++ {
				if _, ok := r.Lookup(IDUMAC32); !ok {
					done <- false
					return
				}
				r.IDs()
			}
			done <- true
		}()
	}
	for i := 0; i < 8; i++ {
		if !<-done {
			t.Fatal("concurrent lookup failed")
		}
	}
}

// Benchmarks feeding Table 4: per-algorithm authentication cost on the
// paper's 1500-bit (188-byte) message.
func benchAuth(b *testing.B, a Authenticator, n int) {
	msg := make([]byte, n)
	b.SetBytes(int64(n))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := a.Tag(key16, msg, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCRC32_188B(b *testing.B)    { benchAuth(b, NewCRC32(), 188) }
func BenchmarkHMACMD5_188B(b *testing.B)  { benchAuth(b, NewHMACMD5(), 188) }
func BenchmarkHMACSHA1_188B(b *testing.B) { benchAuth(b, NewHMACSHA1(), 188) }
func BenchmarkUMAC32_188B(b *testing.B)   { benchAuth(b, NewUMAC32(), 188) }

func BenchmarkCRC32_1024B(b *testing.B)    { benchAuth(b, NewCRC32(), 1024) }
func BenchmarkHMACMD5_1024B(b *testing.B)  { benchAuth(b, NewHMACMD5(), 1024) }
func BenchmarkHMACSHA1_1024B(b *testing.B) { benchAuth(b, NewHMACSHA1(), 1024) }
func BenchmarkUMAC32_1024B(b *testing.B)   { benchAuth(b, NewUMAC32(), 1024) }
