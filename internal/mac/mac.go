// Package mac provides the authentication functions the paper compares
// (section 5.2, Table 4) behind one interface: a keyed function producing
// the 32-bit Authentication Tag (AT) that replaces the ICRC field.
//
// Each Authenticator has a small numeric ID. The sender stores the ID in
// the BTH Resv8a byte (zero means "plain ICRC, no authentication") and the
// tag in the ICRC field; the receiver looks the ID up in a Registry and
// verifies the tag with the secret key indexed by P_Key or (Q_Key, SrcQP).
// Because Resv8a is a variant field, legacy IBA gear forwards these packets
// unmodified — the property the paper's design hinges on.
package mac

import (
	"crypto/hmac"
	"crypto/md5"
	"crypto/sha1"
	"encoding/binary"
	"fmt"
	"hash"
	"sort"
	"sync"

	"ibasec/internal/icrc"
	"ibasec/internal/umac"
)

// Well-known authentication function IDs (values of BTH.Resv8a). ID 0 is
// reserved for "no authentication; ICRC in use".
const (
	IDNone      uint8 = 0
	IDHMACMD5   uint8 = 1
	IDHMACSHA1  uint8 = 2
	IDUMAC32    uint8 = 3
	IDTruncUMAC uint8 = 4 // fast mode: digest a bounded prefix (paper §7)
)

// TagSize is the authentication tag size in bytes — it must equal the
// ICRC field size for the paper's in-place encoding to work.
const TagSize = 4

// Authenticator computes and verifies 32-bit authentication tags.
// Implementations must be safe for concurrent use.
type Authenticator interface {
	// ID is the function identifier stored in BTH.Resv8a (non-zero).
	ID() uint8
	// Name is a short human-readable algorithm name.
	Name() string
	// Tag authenticates msg under key. The nonce must be unique per
	// (key, message) — the transport builds it from the source QP and
	// PSN. Algorithms that don't consume a nonce ignore it.
	Tag(key, msg []byte, nonce uint64) (uint32, error)
	// ForgeryProb returns the per-packet forgery probability of the
	// 32-bit truncated tag (Table 4's last column).
	ForgeryProb() float64
}

// Verify recomputes the tag and compares. All current algorithms are
// deterministic given (key, msg, nonce), so verification is recomputation.
func Verify(a Authenticator, key, msg []byte, nonce uint64, tag uint32) (bool, error) {
	want, err := a.Tag(key, msg, nonce)
	if err != nil {
		return false, err
	}
	return want == tag, nil
}

// VerifyAny tries each candidate key in order and returns the index of
// the first one whose tag matches, or ok=false when none does. Key-epoch
// rotation uses this to accept packets signed under either the current
// or the grace-window epoch without a wire-format change.
func VerifyAny(a Authenticator, keys [][]byte, msg []byte, nonce uint64, tag uint32) (int, bool, error) {
	for i, key := range keys {
		ok, err := Verify(a, key, msg, nonce, tag)
		if err != nil {
			return 0, false, err
		}
		if ok {
			return i, true, nil
		}
	}
	return 0, false, nil
}

// hmacAuth truncates an HMAC digest to 32 bits. The paper projects the
// forgery probability of a t-bit truncation of an unbroken hash as ~2^-t.
type hmacAuth struct {
	id   uint8
	name string
	newH func() hash.Hash
}

func (h *hmacAuth) ID() uint8            { return h.id }
func (h *hmacAuth) Name() string         { return h.name }
func (h *hmacAuth) ForgeryProb() float64 { return 1.0 / (1 << 32) }

func (h *hmacAuth) Tag(key, msg []byte, nonce uint64) (uint32, error) {
	if len(key) == 0 {
		return 0, fmt.Errorf("mac: %s requires a key", h.name)
	}
	m := hmac.New(h.newH, key)
	var nb [8]byte
	binary.BigEndian.PutUint64(nb[:], nonce)
	m.Write(nb[:])
	m.Write(msg)
	return binary.BigEndian.Uint32(m.Sum(nil)[:TagSize]), nil
}

// NewHMACMD5 returns the HMAC-MD5 authenticator (IPSec-conventional MAC
// included for interoperability comparison).
func NewHMACMD5() Authenticator {
	return &hmacAuth{id: IDHMACMD5, name: "HMAC-MD5", newH: md5.New}
}

// NewHMACSHA1 returns the HMAC-SHA1 authenticator.
func NewHMACSHA1() Authenticator {
	return &hmacAuth{id: IDHMACSHA1, name: "HMAC-SHA1", newH: sha1.New}
}

// umacAuth is the paper's preferred algorithm: provable 2^-30 forgery at
// 32-bit tags and near-CRC speed.
type umacAuth struct {
	mu    sync.Mutex
	cache map[[umac.KeySize]byte]*umac.UMAC
	// prefix > 0 enables the paper's section-7 fast mode: only the
	// first prefix bytes of the message are digested, trading forgery
	// probability for speed.
	prefix int
	id     uint8
	name   string
}

// NewUMAC32 returns the UMAC-32 authenticator.
func NewUMAC32() Authenticator {
	return &umacAuth{cache: map[[umac.KeySize]byte]*umac.UMAC{}, id: IDUMAC32, name: "UMAC-32"}
}

// NewTruncatedUMAC returns the section-7 "fast authentication" variant
// that digests only the first prefix bytes of each message. Forgery
// probability on the undigested suffix is 1, so the effective bound is
// dominated by how much of the packet an attacker needs to control.
func NewTruncatedUMAC(prefix int) Authenticator {
	if prefix <= 0 {
		panic("mac: prefix must be positive")
	}
	return &umacAuth{
		cache:  map[[umac.KeySize]byte]*umac.UMAC{},
		prefix: prefix,
		id:     IDTruncUMAC,
		name:   fmt.Sprintf("UMAC-32/prefix%d", prefix),
	}
}

func (u *umacAuth) ID() uint8    { return u.id }
func (u *umacAuth) Name() string { return u.name }

func (u *umacAuth) ForgeryProb() float64 {
	if u.prefix > 0 {
		// Tampering beyond the digested prefix is undetectable.
		return 1.0
	}
	return 1.0 / (1 << 30) // proven bound for UMAC-32
}

func (u *umacAuth) Tag(key, msg []byte, nonce uint64) (uint32, error) {
	if len(key) != umac.KeySize {
		return 0, fmt.Errorf("mac: UMAC requires a %d-byte key, got %d", umac.KeySize, len(key))
	}
	var kk [umac.KeySize]byte
	copy(kk[:], key)
	u.mu.Lock()
	inst := u.cache[kk]
	if inst == nil {
		var err error
		inst, err = umac.New(key)
		if err != nil {
			u.mu.Unlock()
			return 0, err
		}
		u.cache[kk] = inst
	}
	u.mu.Unlock()
	if u.prefix > 0 && len(msg) > u.prefix {
		msg = msg[:u.prefix]
	}
	return inst.Tag32Uint(msg, nonce)
}

// crcAuth is the unkeyed CRC-32 baseline: pure error detection, forgery
// probability 1 (anyone can recompute it). It exists so Table 4 can be
// regenerated and so tests can demonstrate why CRC is not authentication.
type crcAuth struct{}

// NewCRC32 returns the CRC-32 "authenticator" baseline. It never appears
// in a Registry under a non-zero ID in production configurations.
func NewCRC32() Authenticator { return crcAuth{} }

func (crcAuth) ID() uint8            { return IDNone }
func (crcAuth) Name() string         { return "CRC-32" }
func (crcAuth) ForgeryProb() float64 { return 1.0 }
func (crcAuth) Tag(_ []byte, msg []byte, _ uint64) (uint32, error) {
	return icrc.CRC32(msg), nil
}

// Registry maps authentication-function IDs to implementations. The zero
// value is empty; DefaultRegistry returns one with all standard functions.
type Registry struct {
	mu    sync.RWMutex
	byID  map[uint8]Authenticator
	names map[string]uint8
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byID: map[uint8]Authenticator{}, names: map[string]uint8{}}
}

// DefaultRegistry returns a registry holding HMAC-MD5, HMAC-SHA1 and
// UMAC-32 under their well-known IDs.
func DefaultRegistry() *Registry {
	r := NewRegistry()
	for _, a := range []Authenticator{NewHMACMD5(), NewHMACSHA1(), NewUMAC32()} {
		if err := r.Register(a); err != nil {
			panic(err)
		}
	}
	return r
}

// Register adds an authenticator under its ID. ID 0 and duplicate IDs are
// rejected.
func (r *Registry) Register(a Authenticator) error {
	if a.ID() == IDNone {
		return fmt.Errorf("mac: cannot register under reserved ID 0 (%s)", a.Name())
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byID[a.ID()]; dup {
		return fmt.Errorf("mac: ID %d already registered", a.ID())
	}
	r.byID[a.ID()] = a
	r.names[a.Name()] = a.ID()
	return nil
}

// Lookup returns the authenticator registered under id.
func (r *Registry) Lookup(id uint8) (Authenticator, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	a, ok := r.byID[id]
	return a, ok
}

// IDs returns all registered IDs in ascending order.
func (r *Registry) IDs() []uint8 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	ids := make([]uint8, 0, len(r.byID))
	for id := range r.byID {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
