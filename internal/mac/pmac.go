package mac

import (
	"crypto/aes"
	"crypto/cipher"
	"encoding/binary"
	"fmt"
	"math/bits"
	"sync"
)

// PMAC (Black-Rogaway) is the parallelizable MAC the paper's section 7
// points to for fast InfiniBand authentication ("NIST selected PMAC as
// one of the authentication modes of operation"): unlike CBC-style MACs
// its block computations are independent, so a hardware CA can digest all
// blocks of a packet concurrently.
//
// This is PMAC1 over AES-128: block i of the message is whitened with a
// Gray-code multiple of L = E_K(0^128) in GF(2^128), encrypted, and the
// results XOR-fold into Σ; the final (possibly partial) block is folded
// in directly (padded, or ⊕ L·x⁻¹ when full) and the tag is the
// truncated encryption of Σ. Our Authenticator wrapper folds the nonce
// in as a prefix block, as with the HMAC wrappers.

// pmacAuth implements Authenticator with a 32-bit truncated PMAC tag.
type pmacAuth struct {
	mu    sync.Mutex
	cache map[[16]byte]*pmacState
}

// IDPMAC is the BTH Resv8a identifier for PMAC-AES128.
const IDPMAC uint8 = 5

type pmacState struct {
	block cipher.Block
	l     [16]byte   // L = E_K(0)
	lInv  [16]byte   // L · x^{-1}
	lPow  [][16]byte // L · x^i for the ntz offset schedule
}

// NewPMAC returns the PMAC-AES128 authenticator (32-bit truncated tag).
func NewPMAC() Authenticator {
	return &pmacAuth{cache: map[[16]byte]*pmacState{}}
}

func (p *pmacAuth) ID() uint8    { return IDPMAC }
func (p *pmacAuth) Name() string { return "PMAC-AES128" }

// ForgeryProb for a t-bit truncated PMAC tag is ~2^-t (up to the usual
// birthday-bound terms, negligible at IBA packet counts).
func (p *pmacAuth) ForgeryProb() float64 { return 1.0 / (1 << 32) }

// gfDouble multiplies a GF(2^128) element by x (the OCB/PMAC "doubling").
func gfDouble(in [16]byte) [16]byte {
	var out [16]byte
	carry := in[0] >> 7
	for i := 0; i < 15; i++ {
		out[i] = in[i]<<1 | in[i+1]>>7
	}
	out[15] = in[15] << 1
	if carry != 0 {
		out[15] ^= 0x87
	}
	return out
}

// gfHalve multiplies by x^{-1}.
func gfHalve(in [16]byte) [16]byte {
	var out [16]byte
	lsb := in[15] & 1
	for i := 15; i > 0; i-- {
		out[i] = in[i]>>1 | in[i-1]<<7
	}
	out[0] = in[0] >> 1
	if lsb != 0 {
		out[0] ^= 0x80
		out[15] ^= 0x43
	}
	return out
}

func xor16(dst *[16]byte, src [16]byte) {
	for i := range dst {
		dst[i] ^= src[i]
	}
}

func (p *pmacAuth) state(key []byte) (*pmacState, error) {
	if len(key) != 16 {
		return nil, fmt.Errorf("mac: PMAC requires a 16-byte key, got %d", len(key))
	}
	var kk [16]byte
	copy(kk[:], key)
	p.mu.Lock()
	defer p.mu.Unlock()
	if st := p.cache[kk]; st != nil {
		return st, nil
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	st := &pmacState{block: block}
	var zero [16]byte
	block.Encrypt(st.l[:], zero[:])
	st.lInv = gfHalve(st.l)
	// Precompute L·x^i for i up to log2(max blocks); 32 covers any
	// message this library authenticates.
	cur := st.l
	for i := 0; i < 32; i++ {
		st.lPow = append(st.lPow, cur)
		cur = gfDouble(cur)
	}
	p.cache[kk] = st
	return st, nil
}

// Tag computes the 32-bit truncated PMAC over nonce||msg.
func (p *pmacAuth) Tag(key, msg []byte, nonce uint64) (uint32, error) {
	st, err := p.state(key)
	if err != nil {
		return 0, err
	}
	var nb [8]byte
	binary.BigEndian.PutUint64(nb[:], nonce)
	full := make([]byte, 0, 8+len(msg))
	full = append(full, nb[:]...)
	full = append(full, msg...)

	var sigma, offset, buf, enc [16]byte
	nBlocks := (len(full) + 15) / 16
	if nBlocks == 0 {
		nBlocks = 1
	}
	// All blocks except the last: Σ ⊕= E_K(M_i ⊕ offset_i), with
	// offset_i advanced by L·x^{ntz(i)} (Gray-code schedule).
	for i := 1; i < nBlocks; i++ {
		xor16(&offset, st.lPow[bits.TrailingZeros(uint(i))])
		copy(buf[:], full[(i-1)*16:i*16])
		xor16(&buf, offset)
		st.block.Encrypt(enc[:], buf[:])
		xor16(&sigma, enc)
	}
	// Final block handling.
	last := full[(nBlocks-1)*16:]
	if len(last) == 16 {
		copy(buf[:], last)
		xor16(&sigma, buf)
		xor16(&sigma, st.lInv)
	} else {
		var padded [16]byte
		copy(padded[:], last)
		padded[len(last)] = 0x80
		xor16(&sigma, padded)
	}
	st.block.Encrypt(enc[:], sigma[:])
	return binary.BigEndian.Uint32(enc[:4]), nil
}
