package packet

import (
	"errors"
	"fmt"
)

// MTU is the path MTU used throughout the paper's testbed (Table 1).
const MTU = 1024

// Packet is a fully parsed IBA data packet. Optional headers are nil when
// absent. ICRC holds either the Invariant CRC or, when BTH.AuthID != 0,
// the 32-bit authentication tag (the paper's Fig. 4(b)).
type Packet struct {
	LRH     LRH
	GRH     *GRH // present iff LRH.LNH == LNHIBAGlobal
	BTH     BTH
	DETH    *DETH
	RETH    *RETH
	AETH    *AETH
	Imm     uint32 // valid iff BTH.OpCode.HasImm()
	Payload []byte
	ICRC    uint32 // invariant CRC or authentication tag
	VCRC    uint16

	// wire caches the marshalled image so a packet crossing many hops is
	// serialized once, not once per hop. It is maintained by Wire/SetWire
	// and must be dropped (InvalidateWire) whenever a header or payload
	// field changes after it was built.
	wire []byte
}

// Errors returned by Unmarshal.
var (
	ErrTooShort  = errors.New("packet: buffer too short")
	ErrBadLength = errors.New("packet: LRH PktLen inconsistent with buffer")
	ErrPayload   = errors.New("packet: payload exceeds MTU")
)

// HeaderSize returns the number of bytes of headers (LRH through the last
// extended transport header, including immediate data, excluding payload
// and CRCs) for the packet's opcode and LNH.
func (p *Packet) HeaderSize() int {
	n := LRHSize + BTHSize
	if p.GRH != nil {
		n += GRHSize
	}
	op := p.BTH.OpCode
	if op.HasDETH() {
		n += DETHSize
	}
	if op.HasRETH() {
		n += RETHSize
	}
	if op.HasAETH() {
		n += AETHSize
	}
	if op.HasImm() {
		n += ImmSize
	}
	return n
}

// WireSize returns the total on-the-wire size in bytes, including payload,
// pad bytes, ICRC and VCRC.
func (p *Packet) WireSize() int {
	return p.HeaderSize() + len(p.Payload) + int(p.BTH.PadCnt) + ICRCSize + VCRCSize
}

// Finalize fills the length-dependent fields (LRH.PktLen, BTH.PadCnt,
// GRH.PayLen if present, LRH.LNH) from the packet's structure. It must be
// called before Marshal after any change to headers or payload.
func (p *Packet) Finalize() error {
	if len(p.Payload) > MTU {
		return fmt.Errorf("%w: %d bytes", ErrPayload, len(p.Payload))
	}
	p.BTH.PadCnt = uint8((4 - len(p.Payload)%4) % 4)
	if p.GRH != nil {
		p.LRH.LNH = LNHIBAGlobal
		p.GRH.IPVer = 6
		p.GRH.NxtHdr = 0x1B
		// GRH PayLen counts everything after the GRH, excluding VCRC.
		after := p.HeaderSize() - LRHSize - GRHSize + len(p.Payload) + int(p.BTH.PadCnt) + ICRCSize
		p.GRH.PayLen = uint16(after)
	} else {
		p.LRH.LNH = LNHIBALocal
	}
	// PktLen is in 4-byte words and covers LRH through ICRC (IBA 7.7.5).
	words := (p.HeaderSize() + len(p.Payload) + int(p.BTH.PadCnt) + ICRCSize) / 4
	if words > 0x7FF {
		return fmt.Errorf("packet: PktLen %d words exceeds 11 bits", words)
	}
	p.LRH.PktLen = uint16(words)
	return nil
}

// Marshal serializes the packet. Call Finalize first; Marshal panics if
// the length fields are inconsistent with the structure.
func (p *Packet) Marshal() []byte {
	b := make([]byte, p.WireSize())
	off := 0
	p.LRH.marshal(b[off : off+LRHSize])
	off += LRHSize
	if p.GRH != nil {
		p.GRH.marshal(b[off : off+GRHSize])
		off += GRHSize
	}
	p.BTH.marshal(b[off : off+BTHSize])
	off += BTHSize
	op := p.BTH.OpCode
	if op.HasDETH() {
		if p.DETH == nil {
			panic(fmt.Sprintf("packet: opcode %v requires DETH", op))
		}
		p.DETH.marshal(b[off : off+DETHSize])
		off += DETHSize
	}
	if op.HasRETH() {
		if p.RETH == nil {
			panic(fmt.Sprintf("packet: opcode %v requires RETH", op))
		}
		p.RETH.marshal(b[off : off+RETHSize])
		off += RETHSize
	}
	if op.HasAETH() {
		if p.AETH == nil {
			panic(fmt.Sprintf("packet: opcode %v requires AETH", op))
		}
		p.AETH.marshal(b[off : off+AETHSize])
		off += AETHSize
	}
	if op.HasImm() {
		b[off] = byte(p.Imm >> 24)
		b[off+1] = byte(p.Imm >> 16)
		b[off+2] = byte(p.Imm >> 8)
		b[off+3] = byte(p.Imm)
		off += ImmSize
	}
	copy(b[off:], p.Payload)
	off += len(p.Payload) + int(p.BTH.PadCnt) // pad bytes are zero
	b[off] = byte(p.ICRC >> 24)
	b[off+1] = byte(p.ICRC >> 16)
	b[off+2] = byte(p.ICRC >> 8)
	b[off+3] = byte(p.ICRC)
	off += ICRCSize
	b[off] = byte(p.VCRC >> 8)
	b[off+1] = byte(p.VCRC)
	return b
}

// Wire returns the packet's marshalled image, serializing it on first
// use and returning the cached bytes thereafter. The returned slice is
// shared: callers must treat it as read-only (use Marshal for a private
// copy). Any mutation of the packet after Wire must be followed by
// InvalidateWire, or the cache will misrepresent the packet.
func (p *Packet) Wire() []byte {
	if p.wire == nil {
		p.wire = p.Marshal()
	}
	return p.wire
}

// SetWire installs b as the cached wire image. The caller asserts that b
// is exactly what Marshal would produce and hands over ownership of the
// backing array. Used by the seal path, which builds the image once and
// patches the CRC trailer in place.
func (p *Packet) SetWire(b []byte) { p.wire = b }

// InvalidateWire drops the cached wire image; the next Wire call
// re-serializes. Call it after mutating any field of an already-cached
// packet.
func (p *Packet) InvalidateWire() { p.wire = nil }

// Unmarshal parses a wire buffer into p, replacing its contents.
func (p *Packet) Unmarshal(b []byte) error {
	*p = Packet{}
	if len(b) < LRHSize+BTHSize+ICRCSize+VCRCSize {
		return ErrTooShort
	}
	off := 0
	p.LRH.unmarshal(b[off : off+LRHSize])
	off += LRHSize
	if int(p.LRH.PktLen)*4+VCRCSize != len(b) {
		return fmt.Errorf("%w: PktLen %d words, buffer %d bytes", ErrBadLength, p.LRH.PktLen, len(b))
	}
	if p.LRH.LNH == LNHIBAGlobal {
		if len(b) < off+GRHSize+BTHSize+ICRCSize+VCRCSize {
			return ErrTooShort
		}
		p.GRH = new(GRH)
		p.GRH.unmarshal(b[off : off+GRHSize])
		off += GRHSize
	}
	p.BTH.unmarshal(b[off : off+BTHSize])
	off += BTHSize
	op := p.BTH.OpCode
	if op.HasDETH() {
		if len(b) < off+DETHSize {
			return ErrTooShort
		}
		p.DETH = new(DETH)
		p.DETH.unmarshal(b[off : off+DETHSize])
		off += DETHSize
	}
	if op.HasRETH() {
		if len(b) < off+RETHSize {
			return ErrTooShort
		}
		p.RETH = new(RETH)
		p.RETH.unmarshal(b[off : off+RETHSize])
		off += RETHSize
	}
	if op.HasAETH() {
		if len(b) < off+AETHSize {
			return ErrTooShort
		}
		p.AETH = new(AETH)
		p.AETH.unmarshal(b[off : off+AETHSize])
		off += AETHSize
	}
	if op.HasImm() {
		if len(b) < off+ImmSize {
			return ErrTooShort
		}
		p.Imm = uint32(b[off])<<24 | uint32(b[off+1])<<16 | uint32(b[off+2])<<8 | uint32(b[off+3])
		off += ImmSize
	}
	payEnd := len(b) - VCRCSize - ICRCSize - int(p.BTH.PadCnt)
	if payEnd < off {
		return ErrTooShort
	}
	if payEnd > off {
		p.Payload = append([]byte(nil), b[off:payEnd]...)
	}
	off = len(b) - VCRCSize - ICRCSize
	p.ICRC = uint32(b[off])<<24 | uint32(b[off+1])<<16 | uint32(b[off+2])<<8 | uint32(b[off+3])
	off += ICRCSize
	p.VCRC = uint16(b[off])<<8 | uint16(b[off+1])
	return nil
}

// Clone returns a deep copy of the packet. The wire cache is not
// carried over: the clone exists to be mutated, so it re-serializes on
// first use instead of aliasing the original's image.
func (p *Packet) Clone() *Packet {
	q := *p
	q.wire = nil
	if p.GRH != nil {
		g := *p.GRH
		q.GRH = &g
	}
	if p.DETH != nil {
		d := *p.DETH
		q.DETH = &d
	}
	if p.RETH != nil {
		r := *p.RETH
		q.RETH = &r
	}
	if p.AETH != nil {
		a := *p.AETH
		q.AETH = &a
	}
	if p.Payload != nil {
		q.Payload = append([]byte(nil), p.Payload...)
	}
	return &q
}

// String returns a one-line summary for logs and tests.
func (p *Packet) String() string {
	s := fmt.Sprintf("%v SLID=%d DLID=%d VL=%d PKey=%#04x QP=%d PSN=%d len=%dB",
		p.BTH.OpCode, p.LRH.SLID, p.LRH.DLID, p.LRH.VL, uint16(p.BTH.PKey),
		p.BTH.DestQP, p.BTH.PSN, p.WireSize())
	if p.BTH.AuthID != 0 {
		s += fmt.Sprintf(" auth=%d", p.BTH.AuthID)
	}
	return s
}
