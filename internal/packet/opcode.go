// Package packet implements byte-exact InfiniBand Architecture data-packet
// formats: LRH, GRH, BTH, DETH, RETH, AETH, payload, and the trailing
// ICRC/VCRC fields (IBA spec vol. 1, release 1.1, chapters 6-9).
//
// The paper's authentication mechanism ("Security Enhancement in InfiniBand
// Architecture", IPPS 2005, section 5.1) reinterprets the 32-bit Invariant
// CRC field as a Message Authentication Code and uses the Reserved byte of
// the Base Transport Header (Resv8a) to identify which authentication
// function produced the tag; both are modelled here without changing any
// field size or offset, exactly as the paper requires.
package packet

import "fmt"

// OpCode is the 8-bit BTH opcode. The top three bits select the transport
// service; the bottom five bits select the operation (IBA 9.2).
type OpCode uint8

// Transport service opcode prefixes (OpCode bits 7-5).
const (
	prefixRC  = 0x00 // Reliable Connection
	prefixUC  = 0x20 // Unreliable Connection
	prefixRD  = 0x40 // Reliable Datagram
	prefixUD  = 0x60 // Unreliable Datagram
	prefixCNP = 0x80
)

// Opcodes used by the simulator. Values follow IBA table 35.
const (
	// Reliable Connection (RC).
	RCSendFirst      OpCode = 0x00
	RCSendMiddle     OpCode = 0x01
	RCSendLast       OpCode = 0x02
	RCSendOnly       OpCode = 0x04
	RCRDMAWriteFirst OpCode = 0x06
	RCRDMAWriteLast  OpCode = 0x08
	RCRDMAWriteOnly  OpCode = 0x0A
	RCRDMAReadReq    OpCode = 0x0C
	RCRDMAReadRespO  OpCode = 0x10
	RCAck            OpCode = 0x11

	// Unreliable Connection (UC).
	UCSendOnly OpCode = 0x24

	// Unreliable Datagram (UD).
	UDSendOnly    OpCode = 0x64
	UDSendOnlyImm OpCode = 0x65

	// Congestion Notification Packet (CC annex A10): a standalone BTH-only
	// packet a destination returns to a UD source whose packets arrived
	// FECN-marked. RC flows piggyback BECN on ACKs instead.
	CNPNotify OpCode = 0x81
)

// Service identifies an IBA transport service type.
type Service uint8

// Transport service types.
const (
	ServiceRC Service = iota
	ServiceUC
	ServiceRD
	ServiceUD
	ServiceOther
)

func (s Service) String() string {
	switch s {
	case ServiceRC:
		return "RC"
	case ServiceUC:
		return "UC"
	case ServiceRD:
		return "RD"
	case ServiceUD:
		return "UD"
	default:
		return "other"
	}
}

// Service returns the transport service class encoded in the opcode.
func (op OpCode) Service() Service {
	switch uint8(op) & 0xE0 {
	case prefixRC:
		return ServiceRC
	case prefixUC:
		return ServiceUC
	case prefixRD:
		return ServiceRD
	case prefixUD:
		return ServiceUD
	default:
		return ServiceOther
	}
}

// HasDETH reports whether packets with this opcode carry a Datagram
// Extended Transport Header (UD sends carry the Q_Key and source QP there).
func (op OpCode) HasDETH() bool { return op.Service() == ServiceUD }

// HasRETH reports whether packets with this opcode carry an RDMA Extended
// Transport Header (virtual address, R_Key, DMA length).
func (op OpCode) HasRETH() bool {
	return op == RCRDMAWriteFirst || op == RCRDMAWriteOnly || op == RCRDMAReadReq
}

// HasAETH reports whether packets with this opcode carry an ACK Extended
// Transport Header.
func (op OpCode) HasAETH() bool { return op == RCAck || op == RCRDMAReadRespO }

// HasImm reports whether packets with this opcode carry a 4-byte
// immediate-data field after the transport headers.
func (op OpCode) HasImm() bool { return op == UDSendOnlyImm }

// HasPayload reports whether packets with this opcode may carry payload.
func (op OpCode) HasPayload() bool {
	return op != RCAck && op != RCRDMAReadReq && op != CNPNotify
}

func (op OpCode) String() string {
	switch op {
	case RCSendFirst:
		return "RC_SEND_FIRST"
	case RCSendMiddle:
		return "RC_SEND_MIDDLE"
	case RCSendLast:
		return "RC_SEND_LAST"
	case RCSendOnly:
		return "RC_SEND_ONLY"
	case RCRDMAWriteFirst:
		return "RC_RDMA_WRITE_FIRST"
	case RCRDMAWriteLast:
		return "RC_RDMA_WRITE_LAST"
	case RCRDMAWriteOnly:
		return "RC_RDMA_WRITE_ONLY"
	case RCRDMAReadReq:
		return "RC_RDMA_READ_REQUEST"
	case RCRDMAReadRespO:
		return "RC_RDMA_READ_RESPONSE_ONLY"
	case RCAck:
		return "RC_ACKNOWLEDGE"
	case UCSendOnly:
		return "UC_SEND_ONLY"
	case UDSendOnly:
		return "UD_SEND_ONLY"
	case UDSendOnlyImm:
		return "UD_SEND_ONLY_IMMEDIATE"
	case CNPNotify:
		return "CNP"
	default:
		return fmt.Sprintf("OpCode(0x%02x)", uint8(op))
	}
}
