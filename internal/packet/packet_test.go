package packet

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func mkUD(payload int) *Packet {
	p := &Packet{
		LRH:  LRH{VL: 1, SL: 2, DLID: 7, SLID: 3},
		BTH:  BTH{OpCode: UDSendOnly, PKey: 0x8001, DestQP: 42, PSN: 100},
		DETH: &DETH{QKey: 0xDEADBEEF, SrcQP: 17},
	}
	p.Payload = make([]byte, payload)
	for i := range p.Payload {
		p.Payload[i] = byte(i)
	}
	if err := p.Finalize(); err != nil {
		panic(err)
	}
	return p
}

func TestHeaderSizes(t *testing.T) {
	if LRHSize != 8 || GRHSize != 40 || BTHSize != 12 || DETHSize != 8 ||
		RETHSize != 16 || AETHSize != 4 {
		t.Fatal("header size constants drifted from the IBA spec")
	}
}

func TestOpcodeService(t *testing.T) {
	cases := []struct {
		op  OpCode
		svc Service
	}{
		{RCSendOnly, ServiceRC},
		{RCAck, ServiceRC},
		{UDSendOnly, ServiceUD},
		{UDSendOnlyImm, ServiceUD},
		{OpCode(0x24), ServiceUC},
		{OpCode(0x44), ServiceRD},
	}
	for _, c := range cases {
		if got := c.op.Service(); got != c.svc {
			t.Errorf("%v.Service() = %v, want %v", c.op, got, c.svc)
		}
	}
}

func TestOpcodeHeaders(t *testing.T) {
	if !UDSendOnly.HasDETH() || RCSendOnly.HasDETH() {
		t.Error("DETH presence wrong")
	}
	if !RCRDMAWriteOnly.HasRETH() || UDSendOnly.HasRETH() {
		t.Error("RETH presence wrong")
	}
	if !RCAck.HasAETH() || RCSendOnly.HasAETH() {
		t.Error("AETH presence wrong")
	}
	if !UDSendOnlyImm.HasImm() || UDSendOnly.HasImm() {
		t.Error("Imm presence wrong")
	}
	if RCAck.HasPayload() || !RCSendOnly.HasPayload() {
		t.Error("payload presence wrong")
	}
}

func TestPKeyMembership(t *testing.T) {
	full := PKey(0x8123)
	lim := PKey(0x0123)
	if !full.Full() || lim.Full() {
		t.Fatal("membership bit")
	}
	if full.Base() != 0x0123 || lim.Base() != 0x0123 {
		t.Fatal("base value")
	}
	if !full.SameBase(lim) || full.SameBase(PKey(0x8124)) {
		t.Fatal("SameBase")
	}
}

func TestUDRoundTrip(t *testing.T) {
	p := mkUD(100)
	p.ICRC = 0x11223344
	p.VCRC = 0x5566
	b := p.Marshal()
	var q Packet
	if err := q.Unmarshal(b); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, &q) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", q, *p)
	}
}

func TestPadding(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 4, 5, 1023, 1024} {
		p := mkUD(n)
		if (len(p.Payload)+int(p.BTH.PadCnt))%4 != 0 {
			t.Fatalf("payload %d: pad %d not 4-aligned", n, p.BTH.PadCnt)
		}
		b := p.Marshal()
		if len(b) != p.WireSize() {
			t.Fatalf("payload %d: marshal len %d != WireSize %d", n, len(b), p.WireSize())
		}
		if len(b)%4 != VCRCSize%4 {
			// LRH..ICRC must be 4-byte aligned (PktLen is in words).
			t.Fatalf("payload %d: wire size %d misaligned", n, len(b))
		}
		var q Packet
		if err := q.Unmarshal(b); err != nil {
			t.Fatalf("payload %d: %v", n, err)
		}
		if len(q.Payload) != n {
			t.Fatalf("payload %d: got %d after round trip", n, len(q.Payload))
		}
	}
}

func TestMTUExceeded(t *testing.T) {
	p := &Packet{BTH: BTH{OpCode: UDSendOnly}, DETH: &DETH{}}
	p.Payload = make([]byte, MTU+1)
	if err := p.Finalize(); err == nil {
		t.Fatal("Finalize accepted payload over MTU")
	}
}

func TestGRHRoundTrip(t *testing.T) {
	p := mkUD(64)
	p.GRH = &GRH{TClass: 5, FlowLabel: 0xABCDE, HopLmt: 3}
	for i := range p.GRH.SGID {
		p.GRH.SGID[i] = byte(i)
		p.GRH.DGID[i] = byte(0xF0 + i)
	}
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	if p.LRH.LNH != LNHIBAGlobal {
		t.Fatalf("LNH = %d, want global", p.LRH.LNH)
	}
	if p.GRH.IPVer != 6 || p.GRH.NxtHdr != 0x1B {
		t.Fatal("GRH constants not filled")
	}
	b := p.Marshal()
	var q Packet
	if err := q.Unmarshal(b); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, &q) {
		t.Fatalf("GRH round trip mismatch")
	}
}

func TestRCVariants(t *testing.T) {
	rdma := &Packet{
		LRH:     LRH{DLID: 1, SLID: 2},
		BTH:     BTH{OpCode: RCRDMAWriteOnly, PKey: 0x8002, DestQP: 9, PSN: 7, AckReq: true},
		RETH:    &RETH{VA: 0x1000_0000_0000, RKey: 0xCAFE, DMALen: 256},
		Payload: make([]byte, 256),
	}
	if err := rdma.Finalize(); err != nil {
		t.Fatal(err)
	}
	b := rdma.Marshal()
	var q Packet
	if err := q.Unmarshal(b); err != nil {
		t.Fatal(err)
	}
	if q.RETH == nil || q.RETH.RKey != 0xCAFE || q.RETH.VA != 0x1000_0000_0000 {
		t.Fatalf("RETH mismatch: %+v", q.RETH)
	}
	if !q.BTH.AckReq {
		t.Fatal("AckReq lost")
	}

	ack := &Packet{
		LRH:  LRH{DLID: 2, SLID: 1},
		BTH:  BTH{OpCode: RCAck, PKey: 0x8002, DestQP: 8, PSN: 7},
		AETH: &AETH{Syndrome: 0x20, MSN: 5},
	}
	if err := ack.Finalize(); err != nil {
		t.Fatal(err)
	}
	var q2 Packet
	if err := q2.Unmarshal(ack.Marshal()); err != nil {
		t.Fatal(err)
	}
	if q2.AETH == nil || q2.AETH.Syndrome != 0x20 || q2.AETH.MSN != 5 {
		t.Fatalf("AETH mismatch: %+v", q2.AETH)
	}
}

func TestImmediate(t *testing.T) {
	p := mkUD(8)
	p.BTH.OpCode = UDSendOnlyImm
	p.Imm = 0xFEEDF00D
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	var q Packet
	if err := q.Unmarshal(p.Marshal()); err != nil {
		t.Fatal(err)
	}
	if q.Imm != 0xFEEDF00D {
		t.Fatalf("Imm = %#x", q.Imm)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	var q Packet
	if err := q.Unmarshal(make([]byte, 10)); err == nil {
		t.Fatal("accepted short buffer")
	}
	p := mkUD(32)
	b := p.Marshal()
	if err := q.Unmarshal(b[:len(b)-4]); err == nil {
		t.Fatal("accepted truncated buffer")
	}
}

func TestAuthIDInResv8a(t *testing.T) {
	p := mkUD(16)
	p.BTH.AuthID = 4
	b := p.Marshal()
	// Resv8a is byte 4 of the BTH, which starts right after the LRH.
	if b[LRHSize+4] != 4 {
		t.Fatalf("AuthID not at Resv8a offset: % x", b[:LRHSize+BTHSize])
	}
	var q Packet
	if err := q.Unmarshal(b); err != nil {
		t.Fatal(err)
	}
	if q.BTH.AuthID != 4 {
		t.Fatal("AuthID lost in round trip")
	}
}

func TestClone(t *testing.T) {
	p := mkUD(40)
	q := p.Clone()
	q.Payload[0] = 0xFF
	q.DETH.QKey = 1
	if p.Payload[0] == 0xFF || p.DETH.QKey == 1 {
		t.Fatal("Clone shares state with original")
	}
	if !bytes.Equal(p.Payload[1:], q.Payload[1:]) {
		t.Fatal("Clone diverged beyond mutation")
	}
}

func TestStringContainsOpcode(t *testing.T) {
	p := mkUD(0)
	p.BTH.AuthID = 2
	s := p.String()
	if s == "" || !bytes.Contains([]byte(s), []byte("UD_SEND_ONLY")) {
		t.Fatalf("String() = %q", s)
	}
}

// Property: any UD packet with random field values survives a
// marshal/unmarshal round trip bit-exactly.
func TestPropertyRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ops := []OpCode{UDSendOnly, UDSendOnlyImm, RCSendOnly, RCRDMAWriteOnly, RCAck}
		op := ops[r.Intn(len(ops))]
		p := &Packet{
			LRH: LRH{
				VL:   uint8(r.Intn(16)),
				SL:   uint8(r.Intn(16)),
				DLID: LID(r.Intn(1 << 16)),
				SLID: LID(r.Intn(1 << 16)),
			},
			BTH: BTH{
				OpCode: op,
				SE:     r.Intn(2) == 0,
				PKey:   PKey(r.Intn(1 << 16)),
				AuthID: uint8(r.Intn(BTHAuthIDMax + 1)),
				FECN:   r.Intn(2) == 0,
				BECN:   r.Intn(2) == 0,
				DestQP: QPN(r.Intn(1 << 24)),
				PSN:    uint32(r.Intn(1 << 24)),
			},
			ICRC: r.Uint32(),
			VCRC: uint16(r.Intn(1 << 16)),
		}
		if op.HasDETH() {
			p.DETH = &DETH{QKey: QKey(r.Uint32()), SrcQP: QPN(r.Intn(1 << 24))}
		}
		if op.HasRETH() {
			p.RETH = &RETH{VA: r.Uint64(), RKey: RKey(r.Uint32()), DMALen: r.Uint32()}
		}
		if op.HasAETH() {
			p.AETH = &AETH{Syndrome: uint8(r.Intn(256)), MSN: uint32(r.Intn(1 << 24))}
		}
		if op.HasImm() {
			p.Imm = r.Uint32()
		}
		if op.HasPayload() {
			p.Payload = make([]byte, r.Intn(MTU+1))
			r.Read(p.Payload)
			if len(p.Payload) == 0 {
				p.Payload = nil
			}
		}
		if err := p.Finalize(); err != nil {
			return false
		}
		var q Packet
		if err := q.Unmarshal(p.Marshal()); err != nil {
			return false
		}
		return reflect.DeepEqual(p, &q)
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Robustness: Unmarshal must never panic on arbitrary bytes — it either
// parses or returns an error (wire input is attacker-controlled).
func TestUnmarshalNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	var q Packet
	for trial := 0; trial < 5000; trial++ {
		n := rng.Intn(160)
		buf := make([]byte, n)
		rng.Read(buf)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on %d random bytes: %v (% x)", n, r, buf)
				}
			}()
			_ = q.Unmarshal(buf)
		}()
	}
	// And on structurally-plausible buffers: take a valid packet and
	// mutate bytes/truncate randomly.
	base := mkUD(64).Marshal()
	for trial := 0; trial < 5000; trial++ {
		buf := append([]byte(nil), base...)
		for k := 0; k < 1+rng.Intn(4); k++ {
			buf[rng.Intn(len(buf))] ^= byte(1 << uint(rng.Intn(8)))
		}
		if rng.Intn(4) == 0 {
			buf = buf[:rng.Intn(len(buf)+1)]
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on mutated packet: %v", r)
				}
			}()
			_ = q.Unmarshal(buf)
		}()
	}
}

// Any buffer that parses must re-marshal to a same-length wire image
// whose re-parse is identical (idempotent decode).
func TestUnmarshalMarshalIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	base := mkUD(200).Marshal()
	for trial := 0; trial < 2000; trial++ {
		buf := append([]byte(nil), base...)
		buf[rng.Intn(len(buf))] ^= byte(1 + rng.Intn(255))
		var p Packet
		if err := p.Unmarshal(buf); err != nil {
			continue
		}
		// Some mutations change PadCnt so re-marshal can shift payload
		// bytes; only require that a successful re-parse agrees with
		// the first parse.
		var p2 Packet
		if err := p2.Unmarshal(p.Marshal()); err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if !reflect.DeepEqual(&p, &p2) {
			t.Fatal("decode not idempotent")
		}
	}
}

func BenchmarkMarshalUD1024(b *testing.B) {
	p := mkUD(1024)
	b.SetBytes(int64(p.WireSize()))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Marshal()
	}
}

func BenchmarkUnmarshalUD1024(b *testing.B) {
	buf := mkUD(1024).Marshal()
	var q Packet
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := q.Unmarshal(buf); err != nil {
			b.Fatal(err)
		}
	}
}
