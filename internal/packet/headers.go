package packet

import (
	"encoding/binary"
	"fmt"
)

// Header sizes in bytes (IBA vol. 1 rel. 1.1).
const (
	LRHSize  = 8
	GRHSize  = 40
	BTHSize  = 12
	DETHSize = 8
	RETHSize = 16
	AETHSize = 4
	ImmSize  = 4
	ICRCSize = 4
	VCRCSize = 2
)

// LNH (Link Next Header) values in the LRH.
const (
	LNHRaw       = 0x0 // raw, no IBA transport
	LNHIPv6      = 0x1
	LNHIBALocal  = 0x2 // BTH follows (no GRH)
	LNHIBAGlobal = 0x3 // GRH then BTH
)

// LID is a 16-bit local identifier assigned by the subnet manager.
type LID uint16

// Broadcast / permissive LID per IBA.
const LIDPermissive LID = 0xFFFF

// LRH is the 8-byte Local Route Header (IBA 7.7).
//
//	byte 0: VL(4) | LVer(4)
//	byte 1: SL(4) | rsvd(2) | LNH(2)
//	bytes 2-3: DLID
//	bytes 4-5: rsvd(5) | PktLen(11)   (length in 4-byte words, LRH..ICRC)
//	bytes 6-7: SLID
type LRH struct {
	VL     uint8 // virtual lane, 0-15 (variant: switches may remap)
	LVer   uint8 // link version, 4 bits
	SL     uint8 // service level, 4 bits
	LNH    uint8 // link next header, 2 bits
	DLID   LID
	PktLen uint16 // 11 bits, length in 4-byte words from LRH through ICRC
	SLID   LID
}

func (h *LRH) marshal(b []byte) {
	b[0] = h.VL<<4 | h.LVer&0x0F
	b[1] = h.SL<<4 | h.LNH&0x03
	binary.BigEndian.PutUint16(b[2:4], uint16(h.DLID))
	binary.BigEndian.PutUint16(b[4:6], h.PktLen&0x07FF)
	binary.BigEndian.PutUint16(b[6:8], uint16(h.SLID))
}

func (h *LRH) unmarshal(b []byte) {
	h.VL = b[0] >> 4
	h.LVer = b[0] & 0x0F
	h.SL = b[1] >> 4
	h.LNH = b[1] & 0x03
	h.DLID = LID(binary.BigEndian.Uint16(b[2:4]))
	h.PktLen = binary.BigEndian.Uint16(b[4:6]) & 0x07FF
	h.SLID = LID(binary.BigEndian.Uint16(b[6:8]))
}

// GID is a 128-bit global identifier.
type GID [16]byte

// GRH is the 40-byte Global Route Header (IBA 8.3), present only when
// LRH.LNH == LNHIBAGlobal. TClass, FlowLabel and HopLimit are variant
// fields for ICRC purposes.
type GRH struct {
	IPVer     uint8  // 4 bits, always 6
	TClass    uint8  // traffic class (variant)
	FlowLabel uint32 // 20 bits (variant)
	PayLen    uint16 // payload length
	NxtHdr    uint8  // next header, 0x1B for IBA BTH
	HopLmt    uint8  // hop limit (variant)
	SGID      GID
	DGID      GID
}

func (h *GRH) marshal(b []byte) {
	v := uint32(h.IPVer&0x0F)<<28 | uint32(h.TClass)<<20 | h.FlowLabel&0xFFFFF
	binary.BigEndian.PutUint32(b[0:4], v)
	binary.BigEndian.PutUint16(b[4:6], h.PayLen)
	b[6] = h.NxtHdr
	b[7] = h.HopLmt
	copy(b[8:24], h.SGID[:])
	copy(b[24:40], h.DGID[:])
}

func (h *GRH) unmarshal(b []byte) {
	v := binary.BigEndian.Uint32(b[0:4])
	h.IPVer = uint8(v >> 28)
	h.TClass = uint8(v >> 20)
	h.FlowLabel = v & 0xFFFFF
	h.PayLen = binary.BigEndian.Uint16(b[4:6])
	h.NxtHdr = b[6]
	h.HopLmt = b[7]
	copy(h.SGID[:], b[8:24])
	copy(h.DGID[:], b[24:40])
}

// QPN is a 24-bit queue pair number.
type QPN uint32

// PKey is a 16-bit partition key: 15-bit key value plus the high
// membership bit (1 = full member, 0 = limited member). See IBA 10.9.
type PKey uint16

// Membership reports whether the P_Key has the full-membership bit set.
func (k PKey) Full() bool { return k&0x8000 != 0 }

// Base returns the 15-bit key value without the membership bit.
func (k PKey) Base() uint16 { return uint16(k) & 0x7FFF }

// SameBase reports whether two P_Keys name the same partition, ignoring
// membership bits.
func (k PKey) SameBase(o PKey) bool { return k.Base() == o.Base() }

// BTH is the 12-byte Base Transport Header (IBA 9.2).
//
//	byte 0:    OpCode
//	byte 1:    SE(1) | M(1) | PadCnt(2) | TVer(4)
//	bytes 2-3: P_Key
//	byte 4:    Resv8a — variant, masked in ICRC. Packed here as
//	           FECN(1) | BECN(1) | AuthID(6): the congestion-control
//	           annex notification bits share the byte with the paper's
//	           authentication-function identifier (section 5.1), which
//	           only needs the low six bits. Because the whole byte is
//	           variant, a switch may set FECN mid-flight without
//	           breaking the ICRC or the authentication tag.
//	bytes 5-7: DestQP (24 bits)
//	byte 8:    A(1) | rsvd(7)
//	bytes 9-11: PSN (24 bits)
type BTH struct {
	OpCode OpCode
	SE     bool  // solicited event
	M      bool  // MigReq
	PadCnt uint8 // 2 bits: pad bytes appended to payload
	TVer   uint8 // 4 bits: transport version
	PKey   PKey
	FECN   bool  // forward explicit congestion notification (CC annex)
	BECN   bool  // backward explicit congestion notification (CC annex)
	AuthID uint8 // Resv8a low 6 bits: 0 = plain ICRC, non-zero = MAC function id
	DestQP QPN
	AckReq bool
	PSN    uint32 // 24 bits
}

// BTH Resv8a bit masks: FECN and BECN occupy the top two bits, the
// authentication-function identifier the remaining six.
const (
	BTHFECNBit   = 0x80
	BTHBECNBit   = 0x40
	BTHAuthIDMax = 0x3F
)

func (h *BTH) marshal(b []byte) {
	b[0] = uint8(h.OpCode)
	b[1] = h.PadCnt<<4&0x30 | h.TVer&0x0F
	if h.SE {
		b[1] |= 0x80
	}
	if h.M {
		b[1] |= 0x40
	}
	binary.BigEndian.PutUint16(b[2:4], uint16(h.PKey))
	b[4] = h.AuthID & BTHAuthIDMax
	if h.FECN {
		b[4] |= BTHFECNBit
	}
	if h.BECN {
		b[4] |= BTHBECNBit
	}
	putUint24(b[5:8], uint32(h.DestQP))
	b[8] = 0
	if h.AckReq {
		b[8] = 0x80
	}
	putUint24(b[9:12], h.PSN)
}

func (h *BTH) unmarshal(b []byte) {
	h.OpCode = OpCode(b[0])
	h.SE = b[1]&0x80 != 0
	h.M = b[1]&0x40 != 0
	h.PadCnt = b[1] >> 4 & 0x03
	h.TVer = b[1] & 0x0F
	h.PKey = PKey(binary.BigEndian.Uint16(b[2:4]))
	h.FECN = b[4]&BTHFECNBit != 0
	h.BECN = b[4]&BTHBECNBit != 0
	h.AuthID = b[4] & BTHAuthIDMax
	h.DestQP = QPN(uint24(b[5:8]))
	h.AckReq = b[8]&0x80 != 0
	h.PSN = uint24(b[9:12])
}

// QKey is a 32-bit queue key carried by datagram packets (IBA 10.2.5).
type QKey uint32

// DETH is the 8-byte Datagram Extended Transport Header (IBA 9.3.3):
// Q_Key(32) | rsvd(8) | SrcQP(24).
type DETH struct {
	QKey  QKey
	SrcQP QPN
}

func (h *DETH) marshal(b []byte) {
	binary.BigEndian.PutUint32(b[0:4], uint32(h.QKey))
	b[4] = 0
	putUint24(b[5:8], uint32(h.SrcQP))
}

func (h *DETH) unmarshal(b []byte) {
	h.QKey = QKey(binary.BigEndian.Uint32(b[0:4]))
	h.SrcQP = QPN(uint24(b[5:8]))
}

// RKey is a 32-bit remote memory access key (IBA 10.6.3).
type RKey uint32

// RETH is the 16-byte RDMA Extended Transport Header (IBA 9.3.1):
// VA(64) | R_Key(32) | DMALen(32).
type RETH struct {
	VA     uint64
	RKey   RKey
	DMALen uint32
}

func (h *RETH) marshal(b []byte) {
	binary.BigEndian.PutUint64(b[0:8], h.VA)
	binary.BigEndian.PutUint32(b[8:12], uint32(h.RKey))
	binary.BigEndian.PutUint32(b[12:16], h.DMALen)
}

func (h *RETH) unmarshal(b []byte) {
	h.VA = binary.BigEndian.Uint64(b[0:8])
	h.RKey = RKey(binary.BigEndian.Uint32(b[8:12]))
	h.DMALen = binary.BigEndian.Uint32(b[12:16])
}

// AETH is the 4-byte ACK Extended Transport Header (IBA 9.3.5):
// Syndrome(8) | MSN(24).
type AETH struct {
	Syndrome uint8
	MSN      uint32 // 24 bits
}

func (h *AETH) marshal(b []byte) {
	b[0] = h.Syndrome
	putUint24(b[1:4], h.MSN)
}

func (h *AETH) unmarshal(b []byte) {
	h.Syndrome = b[0]
	h.MSN = uint24(b[1:4])
}

// AETH syndrome encodings (IBA 9.7.5.2.1, reduced to the three classes
// this model generates). The top three bits select the class — ACK
// (000), RNR NAK (001), NAK (011) — and the low five bits carry the RNR
// timer code or the NAK code (0 = PSN sequence error).
const (
	AETHAck    uint8 = 0x00
	AETHRNRNak uint8 = 0x20
	AETHNAKSeq uint8 = 0x60
)

// IsRNR reports whether the syndrome encodes a receiver-not-ready NAK.
func (h *AETH) IsRNR() bool { return h.Syndrome&0xE0 == AETHRNRNak }

// IsNAK reports whether the syndrome encodes a PSN-sequence-error NAK.
func (h *AETH) IsNAK() bool { return h.Syndrome&0xE0 == 0x60 }

// RNRTimer extracts the 5-bit RNR timer code.
func (h *AETH) RNRTimer() uint8 { return h.Syndrome & 0x1F }

func putUint24(b []byte, v uint32) {
	if v > 0xFFFFFF {
		panic(fmt.Sprintf("packet: value %#x exceeds 24 bits", v))
	}
	b[0] = byte(v >> 16)
	b[1] = byte(v >> 8)
	b[2] = byte(v)
}

func uint24(b []byte) uint32 {
	return uint32(b[0])<<16 | uint32(b[1])<<8 | uint32(b[2])
}
