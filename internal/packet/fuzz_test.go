package packet

import (
	"bytes"
	"testing"
)

// mustWire finalizes and marshals a seed packet for the fuzz corpus.
func mustWire(f *testing.F, p *Packet) []byte {
	f.Helper()
	if err := p.Finalize(); err != nil {
		f.Fatal(err)
	}
	return p.Marshal()
}

// FuzzPacketUnmarshal drives the wire parser with arbitrary buffers.
// Accepted inputs must satisfy the parser's own contract: the parsed
// structure accounts for every byte, re-marshalling is stable after one
// normalization pass (pad bytes and reserved bits zeroed), and the
// cached-wire and deep-copy views agree with Marshal.
func FuzzPacketUnmarshal(f *testing.F) {
	f.Add(mustWire(f, &Packet{
		LRH:     LRH{SLID: 1, DLID: 2, VL: 1},
		BTH:     BTH{OpCode: UDSendOnly, PKey: 0x8001, DestQP: 7, PSN: 42},
		DETH:    &DETH{QKey: 0x1234, SrcQP: 3},
		Payload: []byte("datagram payload"),
		ICRC:    0xDEADBEEF,
		VCRC:    0x5A5A,
	}))
	f.Add(mustWire(f, &Packet{
		LRH:     LRH{SLID: 9, DLID: 4},
		GRH:     &GRH{HopLmt: 64},
		BTH:     BTH{OpCode: RCSendOnly, PKey: 0xFFFF, DestQP: 1, PSN: 1},
		Payload: bytes.Repeat([]byte{0xA5}, 33), // exercises padding
	}))
	f.Add(mustWire(f, &Packet{
		LRH:  LRH{SLID: 2, DLID: 1},
		BTH:  BTH{OpCode: RCAck, DestQP: 1, PSN: 5},
		AETH: &AETH{Syndrome: 0, MSN: 5},
	}))
	f.Add(mustWire(f, &Packet{
		LRH:     LRH{SLID: 3, DLID: 6},
		BTH:     BTH{OpCode: RCRDMAWriteOnly, DestQP: 2},
		RETH:    &RETH{VA: 0x1000, RKey: 77, DMALen: 256},
		Payload: bytes.Repeat([]byte{1}, 256),
	}))
	f.Add(mustWire(f, &Packet{
		LRH:     LRH{SLID: 5, DLID: 8},
		BTH:     BTH{OpCode: UDSendOnlyImm, PKey: 0x8002, DestQP: 9},
		DETH:    &DETH{QKey: 1, SrcQP: 4},
		Imm:     0xCAFEF00D,
		Payload: []byte{1, 2, 3},
	}))
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x01, 0x02})

	f.Fuzz(func(t *testing.T, b []byte) {
		var p Packet
		if err := p.Unmarshal(b); err != nil {
			return // rejected input: only absence of panics is asserted
		}
		if p.WireSize() != len(b) {
			t.Fatalf("parsed WireSize %d != buffer %d", p.WireSize(), len(b))
		}
		m := p.Marshal()
		if len(m) != len(b) {
			t.Fatalf("re-marshal length %d != input %d", len(m), len(b))
		}
		var q Packet
		if err := q.Unmarshal(m); err != nil {
			t.Fatalf("re-marshal of accepted packet rejected: %v", err)
		}
		if !bytes.Equal(q.Marshal(), m) {
			t.Fatal("marshal unstable after one normalization pass")
		}
		if !bytes.Equal(p.Wire(), m) {
			t.Fatal("Wire() cache disagrees with Marshal()")
		}
		if !bytes.Equal(p.Clone().Marshal(), m) {
			t.Fatal("Clone() not wire-equivalent to original")
		}
	})
}
