package runner

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// progress tracks one Run call's completion state and periodically
// writes a human-readable status line (completed/total, failures, ETA)
// to the configured writer.
type progress struct {
	w     io.Writer
	label string
	total int

	mu        sync.Mutex
	start     time.Time
	done      int // completed by any means (ok, resumed, failed)
	resumed   int
	failed    int
	lastPrint time.Time
}

// progressInterval throttles status lines so tight sweeps do not spam
// stderr; the final line is always printed.
const progressInterval = 500 * time.Millisecond

func newProgress(w io.Writer, label string, total int) *progress {
	return &progress{w: w, label: label, total: total, start: time.Now()}
}

// step records one finished job and prints a status line if due.
func (p *progress) step(resumed, failed bool) {
	if p == nil || p.w == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.done++
	if resumed {
		p.resumed++
	}
	if failed {
		p.failed++
	}
	now := time.Now()
	final := p.done == p.total
	if !final && now.Sub(p.lastPrint) < progressInterval {
		return
	}
	p.lastPrint = now
	elapsed := now.Sub(p.start)
	line := fmt.Sprintf("runner: %-12s %d/%d done", p.label, p.done, p.total)
	if p.resumed > 0 {
		line += fmt.Sprintf(", %d resumed", p.resumed)
	}
	if p.failed > 0 {
		line += fmt.Sprintf(", %d failed", p.failed)
	}
	line += fmt.Sprintf(", elapsed %s", elapsed.Round(time.Millisecond))
	if executed := p.done - p.resumed; !final && executed > 0 {
		remaining := p.total - p.done
		eta := time.Duration(float64(elapsed) / float64(executed) * float64(remaining))
		line += fmt.Sprintf(", eta %s", eta.Round(time.Millisecond))
	}
	fmt.Fprintln(p.w, line)
}
