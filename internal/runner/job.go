package runner

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"time"
)

// Job is one self-describing unit of work: a single simulation point of
// one experiment. The runner executes Run and files the returned row
// under (Experiment, Key, Seed) in the manifest, so a job must carry
// everything needed to recognise itself across process restarts.
type Job[T any] struct {
	// Experiment names the sweep this point belongs to ("fig5",
	// "scale", ...). It namespaces manifest entries so one manifest can
	// hold a whole `ibsim all` run.
	Experiment string
	// Index is the point's position in the sweep's row order. Results
	// are reassembled by Index, which is what keeps parallel output
	// byte-identical to the serial harness.
	Index int
	// Key identifies the point within its experiment, e.g.
	// "load=0.4,mode=IF". (Experiment, Key, Seed) is the resume key.
	Key string
	// Seed is the job's deterministic identity seed, normally
	// DeriveSeed(baseSeed, Experiment, Key). It fingerprints the job in
	// the manifest — runs at different base seeds never collide — and
	// is the seed replicated points should feed their simulations.
	Seed int64
	// Run computes the row. It must be safe to call from any goroutine
	// and must not depend on other jobs having run.
	Run func(ctx context.Context) (T, error)
}

// DeriveSeed deterministically derives a per-job seed from the base
// simulation seed, the experiment name, and the point key (FNV-1a over
// the three, with separators). The same triple always yields the same
// seed, and any change to one component changes it, so sweeps get
// stable, collision-resistant per-point seeds with no coordination.
func DeriveSeed(base int64, experiment, key string) int64 {
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(base))
	h.Write(b[:])
	io.WriteString(h, experiment)
	h.Write([]byte{0})
	io.WriteString(h, key)
	return int64(h.Sum64())
}

// JobError reports one job's terminal failure (after all retries). The
// pool survives job errors; Run collects them and keeps going.
type JobError struct {
	Experiment string
	Key        string
	Index      int
	Attempts   int
	Err        error
}

func (e *JobError) Error() string {
	return fmt.Sprintf("runner: %s[%s] failed after %d attempt(s): %v",
		e.Experiment, e.Key, e.Attempts, e.Err)
}

func (e *JobError) Unwrap() error { return e.Err }

// WatchdogError reports that one job attempt exceeded the pool's
// per-attempt wall-clock budget and was abandoned. It is always wrapped
// in a *JobError, which attributes the overrun to a specific
// (experiment, key) point.
type WatchdogError struct {
	// Limit is the configured watchdog budget.
	Limit time.Duration
	// Elapsed is how long the attempt had been running when abandoned.
	Elapsed time.Duration
}

func (e *WatchdogError) Error() string {
	return fmt.Sprintf("runner: attempt exceeded watchdog budget %v (ran %v, abandoned)",
		e.Limit, e.Elapsed.Round(time.Millisecond))
}

// PanicError wraps a panic recovered from a job's Run function so that
// one panicking point cannot kill the worker pool.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("runner: job panicked: %v", e.Value)
}
