package runner

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"
)

func TestStoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "manifest.jsonl")
	s, err := Open(path, "seed=1", false)
	if err != nil {
		t.Fatal(err)
	}
	rec := Record{
		Experiment: "fig5", Key: "load=0.4,mode=IF", Seed: 99,
		Status: StatusOK, Attempts: 1, Payload: json.RawMessage(`{"v":7}`),
	}
	if err := s.Append(rec); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(Record{Experiment: "fig5", Key: "bad", Seed: 1,
		Status: StatusFailed, Attempts: 3, Error: "boom"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Same label resumes: the ok record is served, the failed one is not.
	s2, err := Open(path, "seed=1", true)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	raw, ok := s2.Lookup("fig5", "load=0.4,mode=IF", 99)
	if !ok || string(raw) != `{"v":7}` {
		t.Fatalf("lookup = %q, %v", raw, ok)
	}
	if _, ok := s2.Lookup("fig5", "bad", 1); ok {
		t.Fatal("failed record must not resume")
	}
	if s2.Completed() != 1 {
		t.Fatalf("completed = %d", s2.Completed())
	}
}

func TestStoreLabelMismatchStartsFresh(t *testing.T) {
	path := filepath.Join(t.TempDir(), "manifest.jsonl")
	s, err := Open(path, "seed=1", false)
	if err != nil {
		t.Fatal(err)
	}
	s.Append(Record{Experiment: "e", Key: "k", Seed: 1, Status: StatusOK,
		Payload: json.RawMessage(`1`)})
	s.Close()

	s2, err := Open(path, "seed=2", true) // different run config
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, ok := s2.Lookup("e", "k", 1); ok {
		t.Fatal("resumed across run-config labels")
	}
}

func TestStoreSkipsTruncatedTrailingLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "manifest.jsonl")
	s, err := Open(path, "L", false)
	if err != nil {
		t.Fatal(err)
	}
	s.Append(Record{Experiment: "e", Key: "good", Seed: 1, Status: StatusOK,
		Payload: json.RawMessage(`1`)})
	s.Close()
	// Simulate a crash mid-append: a half-written record.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"experiment":"e","key":"torn","se`)
	f.Close()

	s2, err := Open(path, "L", true)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, ok := s2.Lookup("e", "good", 1); !ok {
		t.Fatal("good record lost")
	}
	if s2.Completed() != 1 {
		t.Fatalf("completed = %d", s2.Completed())
	}
}

// Full resume integration: a second Run against the same store must
// serve every point from the manifest and execute nothing.
func TestRunResumesFromStore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "manifest.jsonl")
	var executions atomic.Int64
	mkJobs := func() []Job[int] {
		jobs := make([]Job[int], 5)
		for i := range jobs {
			i := i
			jobs[i] = Job[int]{
				Experiment: "resume", Index: i, Key: fmt.Sprintf("i=%d", i),
				Seed: DeriveSeed(7, "resume", fmt.Sprintf("i=%d", i)),
				Run: func(context.Context) (int, error) {
					executions.Add(1)
					return i * i, nil
				},
			}
		}
		return jobs
	}

	s, err := Open(path, "L", false)
	if err != nil {
		t.Fatal(err)
	}
	first, err := Run(context.Background(),
		New(Options{Workers: 2, Store: s}), mkJobs())
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if executions.Load() != 5 {
		t.Fatalf("first run executed %d jobs", executions.Load())
	}

	s2, err := Open(path, "L", true)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	p := New(Options{Workers: 2, Store: s2})
	second, err := Run(context.Background(), p, mkJobs())
	if err != nil {
		t.Fatal(err)
	}
	if executions.Load() != 5 {
		t.Fatalf("resume re-executed: %d total executions", executions.Load())
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("resumed results differ at %d: %d vs %d", i, first[i], second[i])
		}
	}
	if p.Counters().Get("jobs_resumed") != 5 {
		t.Fatalf("counters: %s", p.Counters())
	}
}

// A run interrupted partway leaves a manifest that resumes the finished
// points and re-runs only the rest.
func TestPartialRunThenResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "manifest.jsonl")
	ctx, cancel := context.WithCancel(context.Background())
	var executed atomic.Int64
	mkJobs := func(interruptAt int64) []Job[int] {
		jobs := make([]Job[int], 8)
		for i := range jobs {
			i := i
			jobs[i] = Job[int]{
				Experiment: "partial", Index: i, Key: fmt.Sprintf("i=%d", i),
				Seed: int64(i),
				Run: func(context.Context) (int, error) {
					n := executed.Add(1)
					if interruptAt > 0 && n == interruptAt {
						cancel()
						time.Sleep(5 * time.Millisecond) // let cancel propagate
					}
					return i + 100, nil
				},
			}
		}
		return jobs
	}

	s, err := Open(path, "L", false)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(ctx, New(Options{Workers: 1, Store: s}), mkJobs(3))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want cancellation, got %v", err)
	}
	s.Close()
	ranFirst := executed.Load()
	if ranFirst >= 8 {
		t.Fatal("interruption had no effect")
	}

	s2, err := Open(path, "L", true)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, err := Run(context.Background(), New(Options{Workers: 1, Store: s2}), mkJobs(0))
	if err != nil {
		t.Fatal(err)
	}
	if executed.Load() != 8 {
		t.Fatalf("resume re-executed finished points: %d total executions (first pass %d)",
			executed.Load(), ranFirst)
	}
	for i, v := range got {
		if v != i+100 {
			t.Fatalf("results[%d] = %d", i, v)
		}
	}
}
