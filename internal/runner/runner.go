// Package runner is a generic, fault-tolerant job-orchestration engine
// for the evaluation harness. Each simulation point of a sweep
// (experiment × config × seed) becomes a self-describing Job; Run
// executes jobs on a bounded worker pool, converts worker panics into
// job errors with bounded retry and exponential backoff, reports live
// progress, and persists every outcome to an append-only JSON-lines
// manifest (Store) so an interrupted run resumes by skipping
// already-completed points.
//
// Results are reassembled by Job.Index, so a sweep's row order — and
// therefore its CSV output — is byte-identical whether it runs on one
// worker or many.
//
// The package is stdlib-only and deliberately knows nothing about the
// simulator: internal/core enumerates its sweeps into jobs and the
// cmd/ibsim CLI supplies the pool configuration (-jobs, -resume,
// -results).
package runner

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"ibasec/internal/metrics"
)

// Options configures a Pool.
type Options struct {
	// Workers is the number of concurrent jobs; <= 0 means
	// runtime.GOMAXPROCS(0).
	Workers int
	// Retries is how many times a failed job is re-executed before its
	// error is surfaced (0 = fail on first error).
	Retries int
	// Backoff is the delay before the first retry; it doubles on each
	// subsequent retry. <= 0 means 50ms.
	Backoff time.Duration
	// Progress, when non-nil, receives live status lines
	// (completed/total, failures, ETA).
	Progress io.Writer
	// Store, when non-nil, persists every job outcome and serves
	// already-completed points on resume.
	Store *Store
	// Watchdog, when positive, is the wall-clock budget for a single job
	// attempt. An attempt that exceeds it is abandoned (its goroutine
	// leaks — simulation jobs have no preemption points) and fails
	// terminally with a *WatchdogError naming the job, so one wedged
	// point cannot hang a whole sweep. Zero disables the watchdog.
	Watchdog time.Duration
}

// Pool executes jobs with bounded concurrency. A Pool may be shared
// across sequential Run calls (one per sweep); its counters accumulate
// over its lifetime.
type Pool struct {
	opts     Options
	counters *metrics.Counters
}

// New returns a pool with the given options.
func New(opts Options) *Pool {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.Backoff <= 0 {
		opts.Backoff = 50 * time.Millisecond
	}
	return &Pool{opts: opts, counters: metrics.NewCounters()}
}

// Counters returns the pool's lifetime counters: jobs_completed,
// jobs_resumed, jobs_failed, job_retries, job_panics.
func (p *Pool) Counters() *metrics.Counters { return p.counters }

// Workers returns the pool's concurrency.
func (p *Pool) Workers() int { return p.opts.Workers }

// Run executes jobs and returns their results ordered by Job.Index
// (results[i] corresponds to jobs[i]). Jobs already completed in the
// pool's Store are served from their stored payloads without
// re-running. A failing or panicking job never kills the pool: its
// error is collected (and recorded in the manifest) while the remaining
// jobs proceed. The returned error joins every job failure plus the
// context error, if any; results of successful jobs are valid even when
// an error is returned.
//
// A nil pool runs the jobs serially with no retries, persistence or
// progress — the behaviour of the historical serial harness.
func Run[T any](ctx context.Context, p *Pool, jobs []Job[T]) ([]T, error) {
	if p == nil {
		p = New(Options{Workers: 1})
	}
	results := make([]T, len(jobs))
	jobErrs := make([]error, len(jobs))

	label := ""
	if len(jobs) > 0 {
		label = jobs[0].Experiment
	}
	prog := newProgress(p.opts.Progress, label, len(jobs))

	// Resume pass: serve completed points from the manifest.
	pending := make([]int, 0, len(jobs))
	for i := range jobs {
		j := &jobs[i]
		if p.opts.Store != nil {
			if raw, ok := p.opts.Store.Lookup(j.Experiment, j.Key, j.Seed); ok {
				var v T
				if err := json.Unmarshal(raw, &v); err == nil {
					results[i] = v
					p.counters.Inc("jobs_resumed", 1)
					prog.step(true, false)
					continue
				}
				// Undecodable payload (e.g. a row type changed shape):
				// fall through and recompute the point.
			}
		}
		pending = append(pending, i)
	}

	workers := p.opts.Workers
	if workers > len(pending) {
		workers = len(pending)
	}
	ch := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range ch {
				var err error
				results[i], err = executeJob(ctx, p, &jobs[i])
				jobErrs[i] = err
				prog.step(false, err != nil)
			}
		}()
	}
dispatch:
	for n, i := range pending {
		select {
		case ch <- i:
		case <-ctx.Done():
			// Mark every undispatched job (including this one) as
			// cancelled so callers see which points never ran.
			for _, j := range pending[n:] {
				jobErrs[j] = &JobError{
					Experiment: jobs[j].Experiment,
					Key:        jobs[j].Key,
					Index:      jobs[j].Index,
					Err:        ctx.Err(),
				}
			}
			break dispatch
		}
	}
	close(ch)
	wg.Wait()

	errs := make([]error, 0, len(jobErrs)+1)
	for _, err := range jobErrs {
		if err != nil {
			errs = append(errs, err)
		}
	}
	if len(errs) > 0 && ctx.Err() != nil {
		errs = append(errs, ctx.Err())
	}
	return results, errors.Join(errs...)
}

// executeJob runs one job with panic recovery, bounded retry and
// exponential backoff, and records the outcome in the pool's store.
func executeJob[T any](ctx context.Context, p *Pool, job *Job[T]) (T, error) {
	var zero T
	backoff := p.opts.Backoff
	start := time.Now()
	for attempt := 1; ; attempt++ {
		v, err := runGuarded(ctx, p, job)
		if err == nil {
			p.counters.Inc("jobs_completed", 1)
			recordOutcome(p, job, Record{
				Status:    StatusOK,
				Attempts:  attempt,
				ElapsedMS: float64(time.Since(start)) / float64(time.Millisecond),
			}, v)
			return v, nil
		}
		var pe *PanicError
		if errors.As(err, &pe) {
			p.counters.Inc("job_panics", 1)
		}
		// A watchdog abort is terminal: the wedged attempt's goroutine is
		// still running, and retrying a job that has proven it won't
		// finish would only stack leaks.
		var we *WatchdogError
		if errors.As(err, &we) {
			p.counters.Inc("job_watchdog_aborts", 1)
			p.counters.Inc("jobs_failed", 1)
			jerr := &JobError{Experiment: job.Experiment, Key: job.Key,
				Index: job.Index, Attempts: attempt, Err: err}
			recordOutcome(p, job, Record{
				Status:    StatusFailed,
				Attempts:  attempt,
				ElapsedMS: float64(time.Since(start)) / float64(time.Millisecond),
				Error:     err.Error(),
			}, zero)
			return zero, jerr
		}
		// Cancellation is not a job fault: don't retry, don't record.
		if ctx.Err() != nil {
			return zero, &JobError{Experiment: job.Experiment, Key: job.Key,
				Index: job.Index, Attempts: attempt, Err: ctx.Err()}
		}
		if attempt > p.opts.Retries {
			p.counters.Inc("jobs_failed", 1)
			jerr := &JobError{Experiment: job.Experiment, Key: job.Key,
				Index: job.Index, Attempts: attempt, Err: err}
			recordOutcome(p, job, Record{
				Status:    StatusFailed,
				Attempts:  attempt,
				ElapsedMS: float64(time.Since(start)) / float64(time.Millisecond),
				Error:     err.Error(),
			}, zero)
			return zero, jerr
		}
		p.counters.Inc("job_retries", 1)
		select {
		case <-time.After(backoff):
		case <-ctx.Done():
			return zero, &JobError{Experiment: job.Experiment, Key: job.Key,
				Index: job.Index, Attempts: attempt, Err: ctx.Err()}
		}
		backoff *= 2
	}
}

// runGuarded runs one attempt under the pool's watchdog. With no
// watchdog the job runs on the worker goroutine directly; with one, it
// runs on its own goroutine and an attempt that outlives the budget is
// abandoned in favour of a *WatchdogError (the goroutine leaks by
// design — see Options.Watchdog).
func runGuarded[T any](ctx context.Context, p *Pool, job *Job[T]) (T, error) {
	if p.opts.Watchdog <= 0 {
		return runOnce(ctx, job)
	}
	type outcome struct {
		v   T
		err error
	}
	done := make(chan outcome, 1)
	start := time.Now()
	go func() {
		v, err := runOnce(ctx, job)
		done <- outcome{v, err}
	}()
	timer := time.NewTimer(p.opts.Watchdog)
	defer timer.Stop()
	select {
	case o := <-done:
		return o.v, o.err
	case <-timer.C:
		var zero T
		return zero, &WatchdogError{Limit: p.opts.Watchdog, Elapsed: time.Since(start)}
	}
}

// runOnce calls the job once, converting a panic into a *PanicError.
func runOnce[T any](ctx context.Context, job *Job[T]) (v T, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	if err := ctx.Err(); err != nil {
		return v, err
	}
	return job.Run(ctx)
}

// recordOutcome files one outcome in the store (when configured). Store
// errors must not fail the job — the result is already computed — so
// they are counted instead of propagated.
func recordOutcome[T any](p *Pool, job *Job[T], rec Record, v T) {
	if p.opts.Store == nil {
		return
	}
	rec.Experiment, rec.Key, rec.Seed = job.Experiment, job.Key, job.Seed
	if rec.Status == StatusOK {
		payload, err := json.Marshal(v)
		if err != nil {
			p.counters.Inc("manifest_errors", 1)
			return
		}
		rec.Payload = payload
	}
	if err := p.opts.Store.Append(rec); err != nil {
		p.counters.Inc("manifest_errors", 1)
	}
}
