package runner

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// testPool returns a pool with fast retries suitable for tests.
func testPool(workers, retries int) *Pool {
	return New(Options{Workers: workers, Retries: retries, Backoff: time.Millisecond})
}

// intJobs builds n jobs whose value is their index times ten.
func intJobs(n int, run func(i int) (int, error)) []Job[int] {
	jobs := make([]Job[int], n)
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{
			Experiment: "test",
			Index:      i,
			Key:        fmt.Sprintf("i=%d", i),
			Seed:       DeriveSeed(1, "test", fmt.Sprintf("i=%d", i)),
			Run:        func(context.Context) (int, error) { return run(i) },
		}
	}
	return jobs
}

func TestRunPreservesOrder(t *testing.T) {
	// Later jobs finish first (decreasing sleep); results must still
	// land at their own index.
	jobs := intJobs(8, func(i int) (int, error) {
		time.Sleep(time.Duration(8-i) * time.Millisecond)
		return i * 10, nil
	})
	got, err := Run(context.Background(), testPool(4, 0), jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*10 {
			t.Fatalf("results[%d] = %d, want %d", i, v, i*10)
		}
	}
}

func TestNilPoolRunsSerially(t *testing.T) {
	var order []int
	jobs := intJobs(4, func(i int) (int, error) {
		order = append(order, i) // safe: serial execution, one goroutine
		return i, nil
	})
	if _, err := Run(context.Background(), nil, jobs); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("serial execution order %v", order)
		}
	}
}

// A panicking job must be retried, then surfaced as a job error —
// without killing the pool: every other job still completes.
func TestPanicRetriedThenSurfaced(t *testing.T) {
	var attempts atomic.Int64
	jobs := intJobs(6, func(i int) (int, error) {
		if i == 3 {
			attempts.Add(1)
			panic("boom at point 3")
		}
		return i * 10, nil
	})
	p := testPool(3, 2)
	got, err := Run(context.Background(), p, jobs)
	if err == nil {
		t.Fatal("panicking job produced no error")
	}
	if n := attempts.Load(); n != 3 { // 1 initial + 2 retries
		t.Fatalf("panicking job attempted %d times, want 3", n)
	}
	var jerr *JobError
	if !errors.As(err, &jerr) {
		t.Fatalf("error %v is not a *JobError", err)
	}
	if jerr.Key != "i=3" || jerr.Attempts != 3 {
		t.Fatalf("wrong attribution: %+v", jerr)
	}
	var perr *PanicError
	if !errors.As(err, &perr) {
		t.Fatalf("panic not wrapped in *PanicError: %v", err)
	}
	for i, v := range got {
		want := i * 10
		if i == 3 {
			want = 0 // failed job leaves the zero value
		}
		if v != want {
			t.Fatalf("pool died with the panic: results[%d] = %d, want %d", i, v, want)
		}
	}
	c := p.Counters()
	if c.Get("job_panics") != 3 || c.Get("job_retries") != 2 ||
		c.Get("jobs_failed") != 1 || c.Get("jobs_completed") != 5 {
		t.Fatalf("counters: %s", c)
	}
}

func TestTransientFailureRecovers(t *testing.T) {
	var calls atomic.Int64
	jobs := intJobs(1, func(i int) (int, error) {
		if calls.Add(1) < 3 {
			return 0, errors.New("transient")
		}
		return 42, nil
	})
	got, err := Run(context.Background(), testPool(1, 2), jobs)
	if err != nil {
		t.Fatalf("job failed despite retries: %v", err)
	}
	if got[0] != 42 || calls.Load() != 3 {
		t.Fatalf("got %v after %d calls", got, calls.Load())
	}
}

func TestRetriesExhausted(t *testing.T) {
	jobs := intJobs(1, func(int) (int, error) { return 0, errors.New("always") })
	_, err := Run(context.Background(), testPool(1, 1), jobs)
	var jerr *JobError
	if !errors.As(err, &jerr) || jerr.Attempts != 2 {
		t.Fatalf("want JobError with 2 attempts, got %v", err)
	}
}

func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	jobs := intJobs(16, func(i int) (int, error) {
		started.Add(1)
		if i == 0 {
			cancel()
		}
		time.Sleep(time.Millisecond)
		return i, nil
	})
	_, err := Run(ctx, testPool(2, 0), jobs)
	if err == nil {
		t.Fatal("cancelled run returned no error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error does not carry context.Canceled: %v", err)
	}
	if n := started.Load(); n >= 16 {
		t.Fatalf("cancellation did not stop dispatch: %d jobs started", n)
	}
}

func TestDeriveSeed(t *testing.T) {
	s := DeriveSeed(1, "fig5", "load=0.4,mode=IF")
	if s2 := DeriveSeed(1, "fig5", "load=0.4,mode=IF"); s2 != s {
		t.Fatalf("not deterministic: %d vs %d", s, s2)
	}
	distinct := map[int64]string{s: "base"}
	for name, v := range map[string]int64{
		"base seed":  DeriveSeed(2, "fig5", "load=0.4,mode=IF"),
		"experiment": DeriveSeed(1, "fig6", "load=0.4,mode=IF"),
		"key":        DeriveSeed(1, "fig5", "load=0.5,mode=IF"),
		// Separator matters: experiment/key boundary must not be
		// ambiguous.
		"boundary": DeriveSeed(1, "fig5load", "=0.4,mode=IF"),
	} {
		if prev, dup := distinct[v]; dup {
			t.Fatalf("seed collision between %q and %q", name, prev)
		}
		distinct[v] = name
	}
}

func TestEmptyJobList(t *testing.T) {
	got, err := Run(context.Background(), testPool(4, 0), []Job[int]{})
	if err != nil || len(got) != 0 {
		t.Fatalf("empty run: %v, %v", got, err)
	}
}

func TestWatchdogAbortsWedgedJob(t *testing.T) {
	wedge := make(chan struct{})
	defer close(wedge)
	jobs := intJobs(4, func(i int) (int, error) {
		if i == 2 {
			<-wedge // never closes during the run: the job is wedged
		}
		return i * 10, nil
	})
	p := New(Options{Workers: 2, Retries: 3, Backoff: time.Millisecond,
		Watchdog: 30 * time.Millisecond})
	got, err := Run(context.Background(), p, jobs)
	if err == nil {
		t.Fatal("wedged job not aborted")
	}
	var we *WatchdogError
	if !errors.As(err, &we) {
		t.Fatalf("want WatchdogError, got %v", err)
	}
	var je *JobError
	if !errors.As(err, &je) || je.Key != "i=2" {
		t.Fatalf("abort not attributed to the wedged point: %v", err)
	}
	// The healthy points still completed, in order.
	for i, want := range []int{0, 10, 0, 30} {
		if got[i] != want {
			t.Fatalf("results[%d] = %d, want %d", i, got[i], want)
		}
	}
	// Terminal: no retries were burned on a job that cannot finish.
	if n := p.Counters().Get("job_watchdog_aborts"); n != 1 {
		t.Fatalf("job_watchdog_aborts = %d, want 1", n)
	}
	if n := p.Counters().Get("job_retries"); n != 0 {
		t.Fatalf("job_retries = %d, want 0", n)
	}
}

func TestWatchdogLeavesFastJobsAlone(t *testing.T) {
	jobs := intJobs(6, func(i int) (int, error) { return i * 10, nil })
	p := New(Options{Workers: 3, Watchdog: time.Second})
	got, err := Run(context.Background(), p, jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != i*10 {
			t.Fatalf("results[%d] = %d", i, got[i])
		}
	}
	if n := p.Counters().Get("job_watchdog_aborts"); n != 0 {
		t.Fatalf("spurious aborts: %d", n)
	}
}
