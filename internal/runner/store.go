package runner

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"sync"
)

// storeVersion is bumped whenever the manifest line format changes;
// manifests written by other versions are never resumed from.
const storeVersion = 1

// Header is the first line of a manifest. Label fingerprints the run
// configuration (seed, duration, scale flags); a resume attempt against
// a manifest with a different label starts fresh instead of mixing
// points from incompatible runs.
type Header struct {
	Version int    `json:"version"`
	Tool    string `json:"tool"`
	Label   string `json:"label"`
}

// Record is one manifest line: the outcome of one job.
type Record struct {
	Experiment string          `json:"experiment"`
	Key        string          `json:"key"`
	Seed       int64           `json:"seed"`
	Status     string          `json:"status"` // StatusOK or StatusFailed
	Attempts   int             `json:"attempts"`
	ElapsedMS  float64         `json:"elapsed_ms"`
	Payload    json.RawMessage `json:"payload,omitempty"`
	Error      string          `json:"error,omitempty"`
}

// Record statuses.
const (
	StatusOK     = "ok"
	StatusFailed = "failed"
)

// Store is an append-only JSON-lines result manifest. Every completed
// job appends one Record; on resume the store is replayed and completed
// points are served from their stored payloads instead of re-running.
// Appends are flushed line-atomically, so a run killed mid-flight loses
// at most the in-progress points; a truncated final line (crash during
// write) is skipped on replay. Store is safe for concurrent use.
type Store struct {
	mu   sync.Mutex
	f    *os.File
	w    *bufio.Writer
	done map[string]json.RawMessage // completed-point payloads by resume key
	path string
}

func resumeKey(experiment, key string, seed int64) string {
	return experiment + "\x00" + key + "\x00" + strconv.FormatInt(seed, 10)
}

// Open opens (or creates) the manifest at path. When resume is true and
// the existing manifest's header matches label, its completed records
// are loaded for Lookup and new records are appended after them; in
// every other case the file is truncated and a fresh header written.
func Open(path, label string, resume bool) (*Store, error) {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("runner: creating manifest dir: %w", err)
		}
	}
	s := &Store{done: make(map[string]json.RawMessage), path: path}
	if resume {
		if ok, err := s.loadExisting(path, label); err != nil {
			return nil, err
		} else if ok {
			f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return nil, fmt.Errorf("runner: opening manifest: %w", err)
			}
			s.f, s.w = f, bufio.NewWriter(f)
			return s, nil
		}
		// Header mismatch or unreadable manifest: fall through and
		// start fresh — resuming across incompatible runs would stitch
		// together rows from different configurations.
		s.done = make(map[string]json.RawMessage)
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("runner: creating manifest: %w", err)
	}
	s.f, s.w = f, bufio.NewWriter(f)
	hdr, err := json.Marshal(Header{Version: storeVersion, Tool: "ibsim", Label: label})
	if err != nil {
		f.Close()
		return nil, err
	}
	if _, err := s.w.Write(append(hdr, '\n')); err != nil {
		f.Close()
		return nil, fmt.Errorf("runner: writing manifest header: %w", err)
	}
	if err := s.w.Flush(); err != nil {
		f.Close()
		return nil, fmt.Errorf("runner: writing manifest header: %w", err)
	}
	return s, nil
}

// loadExisting replays the manifest at path, returning true when its
// header matches label and its completed records were loaded.
func (s *Store) loadExisting(path, label string) (bool, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return false, nil
		}
		return false, fmt.Errorf("runner: opening manifest: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	if !sc.Scan() {
		return false, nil // empty file
	}
	var hdr Header
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil ||
		hdr.Version != storeVersion || hdr.Label != label {
		return false, nil
	}
	for sc.Scan() {
		var rec Record
		// Skip unparseable lines: a crash mid-append leaves at most one
		// truncated trailing line, which simply re-runs that point.
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			continue
		}
		if rec.Status != StatusOK || len(rec.Payload) == 0 {
			continue
		}
		s.done[resumeKey(rec.Experiment, rec.Key, rec.Seed)] = rec.Payload
	}
	if err := sc.Err(); err != nil {
		return false, fmt.Errorf("runner: reading manifest: %w", err)
	}
	return true, nil
}

// Lookup returns the stored payload of a completed point, if any.
func (s *Store) Lookup(experiment, key string, seed int64) (json.RawMessage, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	raw, ok := s.done[resumeKey(experiment, key, seed)]
	return raw, ok
}

// Completed returns how many completed points the store knows about.
func (s *Store) Completed() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.done)
}

// Path returns the manifest's file path.
func (s *Store) Path() string { return s.path }

// Append writes one record and flushes it. Successful records also
// become visible to Lookup, so later sweeps in the same process (e.g. a
// re-entered experiment) resume without re-reading the file.
func (s *Store) Append(rec Record) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("runner: encoding manifest record: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.w.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("runner: appending manifest record: %w", err)
	}
	if err := s.w.Flush(); err != nil {
		return fmt.Errorf("runner: flushing manifest: %w", err)
	}
	if rec.Status == StatusOK && len(rec.Payload) > 0 {
		s.done[resumeKey(rec.Experiment, rec.Key, rec.Seed)] = rec.Payload
	}
	return nil
}

// Close flushes and closes the manifest file.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	ferr := s.w.Flush()
	cerr := s.f.Close()
	s.f = nil
	if ferr != nil {
		return ferr
	}
	return cerr
}
