package sim

import "fmt"

// Scheduler is the event-scheduling surface the fabric model is built
// against: everything a device, protocol timer or traffic source needs
// to schedule, cancel and read the clock. Both the serial Simulator and
// each Shard of the parallel engine implement it, so model code is
// engine-agnostic.
type Scheduler interface {
	// Now returns the current simulation time as seen by this scheduler.
	Now() Time
	// Schedule queues fn to run after delay (>= 0).
	Schedule(delay Time, fn func()) Event
	// ScheduleAt queues fn at absolute time at (>= Now).
	ScheduleAt(at Time, fn func()) Event
	// Cancel removes a pending event, reporting whether it did.
	Cancel(e Event) bool
	// Every runs fn each period until the returned cancel is called.
	Every(period Time, fn func()) (cancel func())
}

// Engine is a complete simulation driver: a Scheduler that can also run
// the event loop to a deadline. The serial Simulator and the Sharded
// parallel engine both implement it; the cluster layer holds an Engine
// so the two are interchangeable behind the -shards knob.
type Engine interface {
	Scheduler
	// Run fires events until none remain or Stop is called.
	Run()
	// RunUntil fires events with timestamps <= deadline, then advances
	// the clock to the deadline.
	RunUntil(deadline Time)
	// Stop makes the innermost Run or RunUntil return early.
	Stop()
	// Fired returns the number of events executed so far.
	Fired() uint64
	// Pending returns the number of events still queued.
	Pending() int
}

var (
	_ Engine    = (*Simulator)(nil)
	_ Engine    = (*Sharded)(nil)
	_ Scheduler = (*Shard)(nil)
)

// Simulator is a single-threaded discrete-event scheduler. The zero value
// is ready to use. Simulator is not safe for concurrent use; the fabric
// model is deliberately single-threaded so that runs are deterministic.
type Simulator struct {
	now     Time
	seq     uint64
	q       eventQueue
	fired   uint64
	stopped bool
}

// New returns a ready-to-run Simulator at time zero.
func New() *Simulator { return &Simulator{} }

// Now returns the current simulation time.
func (s *Simulator) Now() Time { return s.now }

// Fired returns the number of events executed so far.
func (s *Simulator) Fired() uint64 { return s.fired }

// Pending returns the number of events still queued.
func (s *Simulator) Pending() int { return s.q.len() }

// Schedule queues fn to run after delay. A negative delay panics: the past
// is immutable in a discrete-event simulation. Events scheduled for the
// same instant run in the order they were scheduled.
func (s *Simulator) Schedule(delay Time, fn func()) Event {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	return s.ScheduleAt(s.now+delay, fn)
}

// ScheduleAt queues fn to run at absolute time at, which must not precede
// the current time.
func (s *Simulator) ScheduleAt(at Time, fn func()) Event {
	if at < s.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, s.now))
	}
	if fn == nil {
		panic("sim: nil event function")
	}
	ev := s.q.push(at, s.seq, fn)
	s.seq++
	return ev
}

// Cancel removes a pending event so it never fires, reporting whether it
// did. Cancelling an event that already fired, was already cancelled, a
// zero Event, or an event belonging to another scheduler is a no-op
// returning false.
func (s *Simulator) Cancel(e Event) bool { return s.q.cancel(e) }

// Step fires the next event, advancing the clock to it. It returns false
// if no events remain.
func (s *Simulator) Step() bool {
	if s.q.len() == 0 {
		return false
	}
	sl := s.q.pop()
	s.now = sl.at
	s.fired++
	fn := sl.fn
	// Release before running fn: the handle is already invalidated, so a
	// callback cancelling its own event is a safe no-op, and the slot is
	// immediately reusable by anything fn schedules.
	s.q.release(sl)
	s.q.shrink()
	fn()
	return true
}

// Run fires events until the queue is empty or Stop is called.
func (s *Simulator) Run() {
	s.stopped = false
	for !s.stopped && s.Step() {
	}
}

// RunUntil fires events with timestamps <= deadline, then advances the
// clock to the deadline. Events scheduled beyond the deadline stay queued.
func (s *Simulator) RunUntil(deadline Time) {
	s.stopped = false
	for !s.stopped {
		h := s.q.head()
		if h == nil || h.at > deadline {
			break
		}
		s.Step()
	}
	if !s.stopped && s.now < deadline {
		s.now = deadline
	}
}

// Stop makes the innermost Run or RunUntil return after the current event.
func (s *Simulator) Stop() { s.stopped = true }

// Every schedules fn to run now+period, then every period thereafter,
// until the returned cancel function is called. fn may itself call cancel.
func (s *Simulator) Every(period Time, fn func()) (cancel func()) {
	return every(s, period, fn)
}

// every is the periodic-tick helper behind Simulator.Every and
// Shard.Every.
func every(s Scheduler, period Time, fn func()) (cancel func()) {
	if period <= 0 {
		panic("sim: non-positive period")
	}
	var ev Event
	stopped := false
	var tick func()
	tick = func() {
		if stopped {
			return
		}
		fn()
		if !stopped {
			ev = s.Schedule(period, tick)
		}
	}
	ev = s.Schedule(period, tick)
	return func() {
		stopped = true
		s.Cancel(ev)
	}
}
