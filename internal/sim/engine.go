package sim

import (
	"container/heap"
	"fmt"
)

// Event is a scheduled callback. Events are created by Simulator.Schedule
// and may be cancelled before they fire.
type Event struct {
	at        Time
	seq       uint64
	fn        func()
	index     int // heap index, -1 once removed
	cancelled bool
}

// At returns the simulation time at which the event fires (or would have
// fired, if cancelled).
func (e *Event) At() Time { return e.at }

// Cancelled reports whether Cancel was called on the event.
func (e *Event) Cancelled() bool { return e.cancelled }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Simulator is a single-threaded discrete-event scheduler. The zero value
// is ready to use. Simulator is not safe for concurrent use; the fabric
// model is deliberately single-threaded so that runs are deterministic.
type Simulator struct {
	now     Time
	seq     uint64
	queue   eventHeap
	fired   uint64
	stopped bool
}

// New returns a ready-to-run Simulator at time zero.
func New() *Simulator { return &Simulator{} }

// Now returns the current simulation time.
func (s *Simulator) Now() Time { return s.now }

// Fired returns the number of events executed so far.
func (s *Simulator) Fired() uint64 { return s.fired }

// Pending returns the number of events still queued.
func (s *Simulator) Pending() int { return len(s.queue) }

// Schedule queues fn to run after delay. A negative delay panics: the past
// is immutable in a discrete-event simulation. Events scheduled for the
// same instant run in the order they were scheduled.
func (s *Simulator) Schedule(delay Time, fn func()) *Event {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	return s.ScheduleAt(s.now+delay, fn)
}

// ScheduleAt queues fn to run at absolute time at, which must not precede
// the current time.
func (s *Simulator) ScheduleAt(at Time, fn func()) *Event {
	if at < s.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, s.now))
	}
	if fn == nil {
		panic("sim: nil event function")
	}
	e := &Event{at: at, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.queue, e)
	return e
}

// Cancel removes a pending event so it never fires. Cancelling an event
// that already fired or was already cancelled is a no-op.
func (s *Simulator) Cancel(e *Event) {
	if e == nil || e.cancelled || e.index < 0 {
		if e != nil {
			e.cancelled = true
		}
		return
	}
	e.cancelled = true
	heap.Remove(&s.queue, e.index)
}

// Step fires the next event, advancing the clock to it. It returns false
// if no events remain.
func (s *Simulator) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	e := heap.Pop(&s.queue).(*Event)
	s.now = e.at
	s.fired++
	e.fn()
	return true
}

// Run fires events until the queue is empty or Stop is called.
func (s *Simulator) Run() {
	s.stopped = false
	for !s.stopped && s.Step() {
	}
}

// RunUntil fires events with timestamps <= deadline, then advances the
// clock to the deadline. Events scheduled beyond the deadline stay queued.
func (s *Simulator) RunUntil(deadline Time) {
	s.stopped = false
	for !s.stopped && len(s.queue) > 0 && s.queue[0].at <= deadline {
		s.Step()
	}
	if !s.stopped && s.now < deadline {
		s.now = deadline
	}
}

// Stop makes the innermost Run or RunUntil return after the current event.
func (s *Simulator) Stop() { s.stopped = true }

// Every schedules fn to run now+period, then every period thereafter,
// until the returned cancel function is called. fn may itself call cancel.
func (s *Simulator) Every(period Time, fn func()) (cancel func()) {
	if period <= 0 {
		panic("sim: non-positive period")
	}
	var ev *Event
	stopped := false
	var tick func()
	tick = func() {
		if stopped {
			return
		}
		fn()
		if !stopped {
			ev = s.Schedule(period, tick)
		}
	}
	ev = s.Schedule(period, tick)
	return func() {
		stopped = true
		s.Cancel(ev)
	}
}
