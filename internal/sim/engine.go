package sim

import (
	"container/heap"
	"fmt"
)

// slabBlock is the number of event slots carved out per allocation when
// the free list runs dry. One block comfortably covers a switch radix's
// worth of in-flight arrivals, so even short-lived simulators make a
// handful of allocations instead of one per scheduled event.
const slabBlock = 64

// eventSlot is the pooled storage behind an Event handle. Slots cycle
// queue -> fired/cancelled -> free list -> queue; gen increments every
// time a slot leaves the queue, so a stale handle held across that
// transition can never touch the slot's next occupant.
type eventSlot struct {
	at    Time
	seq   uint64
	gen   uint64
	fn    func()
	index int32 // heap index, -1 once removed
}

// Event is a handle to a scheduled callback, returned by Schedule. It is
// a small value, cheap to copy and store; the zero Event is valid and
// refers to nothing. A handle stays usable after its event fires or is
// cancelled — Pending just reports false — because the underlying slot
// is generation-checked before any access.
type Event struct {
	slot *eventSlot
	gen  uint64
	at   Time
}

// At returns the simulation time at which the event fires (or fired, or
// would have fired if cancelled). Zero for the zero Event.
func (e Event) At() Time { return e.at }

// Pending reports whether the event is still queued: it has neither
// fired nor been cancelled. Safe on the zero Event.
func (e Event) Pending() bool { return e.slot != nil && e.slot.gen == e.gen }

type eventHeap []*eventSlot

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = int32(i)
	h[j].index = int32(j)
}
func (h *eventHeap) Push(x any) {
	e := x.(*eventSlot)
	e.index = int32(len(*h))
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Simulator is a single-threaded discrete-event scheduler. The zero value
// is ready to use. Simulator is not safe for concurrent use; the fabric
// model is deliberately single-threaded so that runs are deterministic.
type Simulator struct {
	now     Time
	seq     uint64
	queue   eventHeap
	free    []*eventSlot
	block   []eventSlot // tail of the current slab block, carved lazily
	fired   uint64
	stopped bool
}

// New returns a ready-to-run Simulator at time zero.
func New() *Simulator { return &Simulator{} }

// Now returns the current simulation time.
func (s *Simulator) Now() Time { return s.now }

// Fired returns the number of events executed so far.
func (s *Simulator) Fired() uint64 { return s.fired }

// Pending returns the number of events still queued.
func (s *Simulator) Pending() int { return len(s.queue) }

func (s *Simulator) alloc() *eventSlot {
	if n := len(s.free); n > 0 {
		sl := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		return sl
	}
	if len(s.block) == 0 {
		s.block = make([]eventSlot, slabBlock)
	}
	sl := &s.block[0]
	s.block = s.block[1:]
	return sl
}

// release returns a slot to the free list after bumping its generation,
// which atomically (from the single-threaded caller's point of view)
// invalidates every outstanding handle to it.
func (s *Simulator) release(sl *eventSlot) {
	sl.gen++
	sl.fn = nil
	s.free = append(s.free, sl)
}

// Schedule queues fn to run after delay. A negative delay panics: the past
// is immutable in a discrete-event simulation. Events scheduled for the
// same instant run in the order they were scheduled.
func (s *Simulator) Schedule(delay Time, fn func()) Event {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	return s.ScheduleAt(s.now+delay, fn)
}

// ScheduleAt queues fn to run at absolute time at, which must not precede
// the current time.
func (s *Simulator) ScheduleAt(at Time, fn func()) Event {
	if at < s.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, s.now))
	}
	if fn == nil {
		panic("sim: nil event function")
	}
	sl := s.alloc()
	sl.at = at
	sl.seq = s.seq
	sl.fn = fn
	s.seq++
	heap.Push(&s.queue, sl)
	return Event{slot: sl, gen: sl.gen, at: at}
}

// Cancel removes a pending event so it never fires, reporting whether it
// did. Cancelling an event that already fired, was already cancelled, or
// a zero Event is a no-op returning false.
func (s *Simulator) Cancel(e Event) bool {
	sl := e.slot
	if sl == nil || sl.gen != e.gen || sl.index < 0 {
		return false
	}
	heap.Remove(&s.queue, int(sl.index))
	s.release(sl)
	return true
}

// shrinkQueue gives back the heap slice's slack after a burst drains, so
// a simulator that once held tens of thousands of in-flight events does
// not pin that memory for the rest of a long run.
func (s *Simulator) shrinkQueue() {
	if cap(s.queue) >= 1024 && len(s.queue)*4 <= cap(s.queue) {
		q := make(eventHeap, len(s.queue), len(s.queue)*2)
		copy(q, s.queue)
		s.queue = q
	}
}

// Step fires the next event, advancing the clock to it. It returns false
// if no events remain.
func (s *Simulator) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	sl := heap.Pop(&s.queue).(*eventSlot)
	s.now = sl.at
	s.fired++
	fn := sl.fn
	// Release before running fn: the handle is already invalidated, so a
	// callback cancelling its own event is a safe no-op, and the slot is
	// immediately reusable by anything fn schedules.
	s.release(sl)
	s.shrinkQueue()
	fn()
	return true
}

// Run fires events until the queue is empty or Stop is called.
func (s *Simulator) Run() {
	s.stopped = false
	for !s.stopped && s.Step() {
	}
}

// RunUntil fires events with timestamps <= deadline, then advances the
// clock to the deadline. Events scheduled beyond the deadline stay queued.
func (s *Simulator) RunUntil(deadline Time) {
	s.stopped = false
	for !s.stopped && len(s.queue) > 0 && s.queue[0].at <= deadline {
		s.Step()
	}
	if !s.stopped && s.now < deadline {
		s.now = deadline
	}
}

// Stop makes the innermost Run or RunUntil return after the current event.
func (s *Simulator) Stop() { s.stopped = true }

// Every schedules fn to run now+period, then every period thereafter,
// until the returned cancel function is called. fn may itself call cancel.
func (s *Simulator) Every(period Time, fn func()) (cancel func()) {
	if period <= 0 {
		panic("sim: non-positive period")
	}
	var ev Event
	stopped := false
	var tick func()
	tick = func() {
		if stopped {
			return
		}
		fn()
		if !stopped {
			ev = s.Schedule(period, tick)
		}
	}
	ev = s.Schedule(period, tick)
	return func() {
		stopped = true
		s.Cancel(ev)
	}
}
