// Package sim provides a deterministic discrete-event simulation engine
// used as the substrate for the IBA fabric model.
//
// Time is kept as an integer count of picoseconds so that byte times on a
// 2.5 Gb/s InfiniBand 1x link (3200 ps per byte) are exact and runs are
// bit-reproducible across platforms. Events scheduled for the same instant
// fire in scheduling order, which makes every simulation deterministic for
// a fixed seed.
package sim

import (
	"fmt"
	"time"
)

// Time is a simulation timestamp or duration in picoseconds.
type Time int64

// Common duration units.
const (
	Picosecond  Time = 1
	Nanosecond       = 1000 * Picosecond
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Nanoseconds returns t as a floating-point nanosecond count.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// Microseconds returns t as a floating-point microsecond count.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// Seconds returns t as a floating-point second count.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Duration converts t to a time.Duration (nanosecond resolution,
// truncating sub-nanosecond remainder).
func (t Time) Duration() time.Duration { return time.Duration(t / Nanosecond) }

// FromDuration converts a time.Duration to a simulation Time.
func FromDuration(d time.Duration) Time { return Time(d.Nanoseconds()) * Nanosecond }

// String formats the time with an adaptive unit, e.g. "12.8ns" or "3.456us".
func (t Time) String() string {
	switch {
	case t == 0:
		return "0s"
	case t%Second == 0:
		return fmt.Sprintf("%ds", t/Second)
	case t >= Millisecond || t <= -Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond || t <= -Microsecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	case t >= Nanosecond || t <= -Nanosecond:
		return fmt.Sprintf("%.3fns", float64(t)/float64(Nanosecond))
	default:
		return fmt.Sprintf("%dps", int64(t))
	}
}
