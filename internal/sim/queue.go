package sim

import "container/heap"

// slabBlock is the number of event slots carved out per allocation when
// the free list runs dry. One block comfortably covers a switch radix's
// worth of in-flight arrivals, so even short-lived simulators make a
// handful of allocations instead of one per scheduled event.
const slabBlock = 64

// eventSlot is the pooled storage behind an Event handle. Slots cycle
// queue -> fired/cancelled -> free list -> queue; gen increments every
// time a slot leaves the queue, so a stale handle held across that
// transition can never touch the slot's next occupant. owner pins the
// slot to the queue that carved it, so a handle presented to the wrong
// scheduler is refused instead of corrupting a foreign heap.
type eventSlot struct {
	at    Time
	seq   uint64
	gen   uint64
	fn    func()
	index int32 // heap index, -1 once removed
	owner *eventQueue
}

// Event is a handle to a scheduled callback, returned by Schedule. It is
// a small value, cheap to copy and store; the zero Event is valid and
// refers to nothing. A handle stays usable after its event fires or is
// cancelled — Pending just reports false — because the underlying slot
// is generation-checked before any access.
type Event struct {
	slot *eventSlot
	gen  uint64
	at   Time
}

// At returns the simulation time at which the event fires (or fired, or
// would have fired if cancelled). Zero for the zero Event.
func (e Event) At() Time { return e.at }

// Pending reports whether the event is still queued: it has neither
// fired nor been cancelled. Safe on the zero Event.
func (e Event) Pending() bool { return e.slot != nil && e.slot.gen == e.gen }

type eventHeap []*eventSlot

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = int32(i)
	h[j].index = int32(j)
}
func (h *eventHeap) Push(x any) {
	e := x.(*eventSlot)
	e.index = int32(len(*h))
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// eventQueue is the slab-pooled pending-event heap shared by the serial
// Simulator and each shard of the parallel engine. It orders events by
// (time, seq) and leaves seq assignment to the caller: the Simulator
// uses one global counter, a Sharded engine one counter per shard (or a
// global one in Ordered mode), which is exactly what makes their event
// orders comparable. The zero value is ready to use. Not safe for
// concurrent use; each queue belongs to one goroutine at a time.
type eventQueue struct {
	heap  eventHeap
	free  []*eventSlot
	block []eventSlot // tail of the current slab block, carved lazily
}

func (q *eventQueue) alloc() *eventSlot {
	if n := len(q.free); n > 0 {
		sl := q.free[n-1]
		q.free[n-1] = nil
		q.free = q.free[:n-1]
		return sl
	}
	if len(q.block) == 0 {
		q.block = make([]eventSlot, slabBlock)
	}
	sl := &q.block[0]
	q.block = q.block[1:]
	sl.owner = q
	return sl
}

// release returns a slot to the free list after bumping its generation,
// which atomically (from the single-threaded caller's point of view)
// invalidates every outstanding handle to it.
func (q *eventQueue) release(sl *eventSlot) {
	sl.gen++
	sl.fn = nil
	q.free = append(q.free, sl)
}

// push queues fn at (at, seq) and returns its handle. The caller has
// already validated at against its clock and chosen seq.
func (q *eventQueue) push(at Time, seq uint64, fn func()) Event {
	sl := q.alloc()
	sl.at = at
	sl.seq = seq
	sl.fn = fn
	heap.Push(&q.heap, sl)
	return Event{slot: sl, gen: sl.gen, at: at}
}

// head returns the earliest pending slot without removing it, or nil.
func (q *eventQueue) head() *eventSlot {
	if len(q.heap) == 0 {
		return nil
	}
	return q.heap[0]
}

// pop removes and returns the earliest pending slot. The caller releases
// it after capturing fn.
func (q *eventQueue) pop() *eventSlot {
	return heap.Pop(&q.heap).(*eventSlot)
}

// cancel removes a pending event, reporting whether it did. Handles that
// already fired, were cancelled, are zero, or belong to another queue
// are refused.
func (q *eventQueue) cancel(e Event) bool {
	sl := e.slot
	if sl == nil || sl.gen != e.gen || sl.index < 0 || sl.owner != q {
		return false
	}
	heap.Remove(&q.heap, int(sl.index))
	q.release(sl)
	return true
}

func (q *eventQueue) len() int { return len(q.heap) }

// shrink gives back the heap slice's slack after a burst drains, so a
// queue that once held tens of thousands of in-flight events does not
// pin that memory for the rest of a long run.
func (q *eventQueue) shrink() {
	if cap(q.heap) >= 1024 && len(q.heap)*4 <= cap(q.heap) {
		h := make(eventHeap, len(q.heap), len(q.heap)*2)
		copy(h, q.heap)
		q.heap = h
	}
}
