package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestTimeUnits(t *testing.T) {
	if Nanosecond != 1000 {
		t.Fatalf("Nanosecond = %d, want 1000", Nanosecond)
	}
	if Second != 1_000_000_000_000 {
		t.Fatalf("Second = %d ps", Second)
	}
	if got := (2500 * Nanosecond).Microseconds(); got != 2.5 {
		t.Fatalf("Microseconds = %v, want 2.5", got)
	}
	if got := (3 * Microsecond).Nanoseconds(); got != 3000 {
		t.Fatalf("Nanoseconds = %v, want 3000", got)
	}
	if got := FromDuration(2 * time.Microsecond); got != 2*Microsecond {
		t.Fatalf("FromDuration = %v", got)
	}
	if got := (5 * Microsecond).Duration(); got != 5*time.Microsecond {
		t.Fatalf("Duration = %v", got)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{0, "0s"},
		{500, "500ps"},
		{1500, "1.500ns"},
		{2 * Microsecond, "2.000us"},
		{3 * Millisecond, "3.000ms"},
		{Second, "1s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestScheduleOrdering(t *testing.T) {
	s := New()
	var order []int
	s.Schedule(30*Nanosecond, func() { order = append(order, 3) })
	s.Schedule(10*Nanosecond, func() { order = append(order, 1) })
	s.Schedule(20*Nanosecond, func() { order = append(order, 2) })
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if s.Now() != 30*Nanosecond {
		t.Fatalf("Now = %v", s.Now())
	}
}

func TestTieBreakFIFO(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 50; i++ {
		i := i
		s.Schedule(5*Nanosecond, func() { order = append(order, i) })
	}
	s.Run()
	if !sort.IntsAreSorted(order) {
		t.Fatalf("same-time events out of scheduling order: %v", order)
	}
}

func TestScheduleInsideEvent(t *testing.T) {
	s := New()
	var hits []Time
	s.Schedule(10, func() {
		hits = append(hits, s.Now())
		s.Schedule(5, func() { hits = append(hits, s.Now()) })
	})
	s.Run()
	if len(hits) != 2 || hits[0] != 10 || hits[1] != 15 {
		t.Fatalf("hits = %v", hits)
	}
}

func TestCancel(t *testing.T) {
	s := New()
	fired := false
	e := s.Schedule(10, func() { fired = true })
	if !e.Pending() {
		t.Fatal("scheduled event not pending")
	}
	if !s.Cancel(e) {
		t.Fatal("Cancel of a pending event returned false")
	}
	s.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if e.Pending() {
		t.Fatal("cancelled event still pending")
	}
	// Cancelling twice, cancelling a fired event, and cancelling the zero
	// Event must be harmless no-ops that report false.
	if s.Cancel(e) {
		t.Fatal("second Cancel returned true")
	}
	e2 := s.Schedule(1, func() {})
	s.Run()
	if s.Cancel(e2) {
		t.Fatal("Cancel of a fired event returned true")
	}
	if s.Cancel(Event{}) {
		t.Fatal("Cancel of the zero Event returned true")
	}
}

// Regression test for the old Cancel semantics, where cancelling an
// already-fired event still set its cancelled flag, so Cancelled()
// claimed a callback that actually ran never did. A fired event must
// read as not pending, and a late Cancel must not rewrite history.
func TestCancelAfterFireDoesNotLie(t *testing.T) {
	s := New()
	ran := false
	e := s.Schedule(5, func() { ran = true })
	s.Run()
	if !ran {
		t.Fatal("event did not run")
	}
	if e.Pending() {
		t.Fatal("fired event reports pending")
	}
	if s.Cancel(e) {
		t.Fatal("Cancel claimed to cancel an event that already ran")
	}
	if e.At() != 5 {
		t.Fatalf("At = %v after fire, want 5", e.At())
	}
}

// A handle held across its event's firing must not be able to cancel
// whatever new event gets recycled into the same pooled slot.
func TestStaleHandleCannotCancelRecycledSlot(t *testing.T) {
	s := New()
	var stale []Event
	for i := 0; i < 10*slabBlock; i++ {
		stale = append(stale, s.Schedule(Time(i), func() {}))
	}
	s.Run()
	// Every slot in the pool has now cycled at least once; fresh events
	// necessarily reuse slots some stale handle still points at.
	fired := 0
	for i := 0; i < 10*slabBlock; i++ {
		s.Schedule(Time(i), func() { fired++ })
	}
	for _, e := range stale {
		if e.Pending() {
			t.Fatal("stale handle reports pending")
		}
		if s.Cancel(e) {
			t.Fatal("stale handle cancelled a recycled slot's event")
		}
	}
	s.Run()
	if fired != 10*slabBlock {
		t.Fatalf("fired %d of %d fresh events", fired, 10*slabBlock)
	}
}

// An event callback cancelling its own (already invalidated) handle must
// be a no-op, even though the slot has returned to the free list.
func TestSelfCancelInsideCallback(t *testing.T) {
	s := New()
	var e Event
	ran := false
	e = s.Schedule(1, func() {
		ran = true
		if s.Cancel(e) {
			t.Error("event cancelled itself while running")
		}
	})
	s.Run()
	if !ran {
		t.Fatal("event did not run")
	}
}

// Steady-state Schedule->Step on a warmed simulator must not allocate:
// slots come from the free list and the heap slice has capacity. This is
// the guard on the tentpole's zero-alloc claim.
func TestStepZeroAllocSteadyState(t *testing.T) {
	s := New()
	fn := func() {}
	for i := 0; i < 4*slabBlock; i++ {
		s.Schedule(Time(i), fn)
	}
	s.Run()
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 100; i++ {
			s.Schedule(Time(i)*Nanosecond, fn)
		}
		s.Run()
	})
	if allocs != 0 {
		t.Fatalf("steady-state Schedule/Step allocated %.1f times per cycle, want 0", allocs)
	}
}

// After a large burst drains, the heap slice must give back its slack
// rather than pin peak-burst memory for the rest of the run.
func TestQueueShrinksAfterBurst(t *testing.T) {
	s := New()
	fn := func() {}
	for i := 0; i < 20000; i++ {
		s.Schedule(Time(i), fn)
	}
	if cap(s.q.heap) < 20000 {
		t.Fatalf("burst did not grow the queue: cap %d", cap(s.q.heap))
	}
	s.Run()
	// Trickle a small steady load through; the shrink check runs in Step.
	for i := 0; i < 10; i++ {
		s.Schedule(Time(i), fn)
	}
	s.Run()
	if cap(s.q.heap) >= 1024 {
		t.Fatalf("queue cap %d after burst drained, want < 1024", cap(s.q.heap))
	}
}

func TestCancelMiddleOfHeap(t *testing.T) {
	s := New()
	var got []int
	var events []Event
	for i := 0; i < 20; i++ {
		i := i
		events = append(events, s.Schedule(Time(i+1)*Nanosecond, func() { got = append(got, i) }))
	}
	for i := 0; i < 20; i += 2 {
		s.Cancel(events[i])
	}
	s.Run()
	if len(got) != 10 {
		t.Fatalf("fired %d events, want 10: %v", len(got), got)
	}
	for _, v := range got {
		if v%2 == 0 {
			t.Fatalf("cancelled event %d fired", v)
		}
	}
}

func TestRunUntil(t *testing.T) {
	s := New()
	var fired []Time
	for _, d := range []Time{5, 10, 15, 20} {
		d := d
		s.Schedule(d*Nanosecond, func() { fired = append(fired, s.Now()) })
	}
	s.RunUntil(12 * Nanosecond)
	if len(fired) != 2 {
		t.Fatalf("fired = %v", fired)
	}
	if s.Now() != 12*Nanosecond {
		t.Fatalf("Now = %v, want 12ns", s.Now())
	}
	if s.Pending() != 2 {
		t.Fatalf("Pending = %d", s.Pending())
	}
	s.RunUntil(100 * Nanosecond)
	if len(fired) != 4 {
		t.Fatalf("fired = %v", fired)
	}
}

func TestStop(t *testing.T) {
	s := New()
	count := 0
	for i := 1; i <= 10; i++ {
		s.Schedule(Time(i), func() {
			count++
			if count == 3 {
				s.Stop()
			}
		})
	}
	s.Run()
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	s.Run() // resumes
	if count != 10 {
		t.Fatalf("count = %d, want 10", count)
	}
}

func TestEvery(t *testing.T) {
	s := New()
	var ticks []Time
	cancel := s.Every(10*Nanosecond, func() {
		ticks = append(ticks, s.Now())
	})
	s.RunUntil(35 * Nanosecond)
	cancel()
	s.RunUntil(100 * Nanosecond)
	if len(ticks) != 3 {
		t.Fatalf("ticks = %v", ticks)
	}
	for i, tk := range ticks {
		if want := Time(i+1) * 10 * Nanosecond; tk != want {
			t.Fatalf("tick %d at %v, want %v", i, tk, want)
		}
	}
}

func TestEveryCancelInsideCallback(t *testing.T) {
	s := New()
	n := 0
	var cancel func()
	cancel = s.Every(Nanosecond, func() {
		n++
		if n == 5 {
			cancel()
		}
	})
	s.Run()
	if n != 5 {
		t.Fatalf("n = %d, want 5", n)
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for negative delay")
		}
	}()
	New().Schedule(-1, func() {})
}

func TestScheduleAtPastPanics(t *testing.T) {
	s := New()
	s.Schedule(10, func() {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for schedule in the past")
		}
	}()
	s.ScheduleAt(5, func() {})
}

func TestNilFuncPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for nil fn")
		}
	}()
	New().Schedule(1, nil)
}

// Property: for any set of delays, events fire in nondecreasing time order
// and the clock never goes backwards.
func TestPropertyMonotonicClock(t *testing.T) {
	f := func(delays []uint16) bool {
		s := New()
		var fireTimes []Time
		for _, d := range delays {
			s.Schedule(Time(d)*Nanosecond, func() {
				fireTimes = append(fireTimes, s.Now())
			})
		}
		s.Run()
		if len(fireTimes) != len(delays) {
			return false
		}
		for i := 1; i < len(fireTimes); i++ {
			if fireTimes[i] < fireTimes[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: random interleaving of schedules and cancels fires exactly the
// non-cancelled events.
func TestPropertyCancelExactness(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		s := New()
		fired := map[int]bool{}
		var evs []Event
		n := 1 + rng.Intn(100)
		for i := 0; i < n; i++ {
			i := i
			evs = append(evs, s.Schedule(Time(rng.Intn(1000)), func() { fired[i] = true }))
		}
		cancelled := map[int]bool{}
		for i := 0; i < n/3; i++ {
			k := rng.Intn(n)
			cancelled[k] = true
			s.Cancel(evs[k])
		}
		s.Run()
		for i := 0; i < n; i++ {
			if cancelled[i] && fired[i] {
				t.Fatalf("trial %d: cancelled event %d fired", trial, i)
			}
			if !cancelled[i] && !fired[i] {
				t.Fatalf("trial %d: live event %d never fired", trial, i)
			}
		}
	}
}

func BenchmarkScheduleRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := New()
		for j := 0; j < 100; j++ {
			s.Schedule(Time(j)*Nanosecond, func() {})
		}
		s.Run()
	}
}
