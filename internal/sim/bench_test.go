package sim

import "testing"

// BenchmarkScheduleRunSteady measures the steady-state Schedule->Step
// cycle on a long-lived Simulator — the regime every experiment run
// actually spends its time in, where the event slab should make the
// scheduler allocation-free.
func BenchmarkScheduleRunSteady(b *testing.B) {
	s := New()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 100; j++ {
			s.Schedule(Time(j)*Nanosecond, fn)
		}
		s.Run()
	}
}
