package sim

import "testing"

// BenchmarkScheduleRunSteady measures the steady-state Schedule->Step
// cycle on a long-lived Simulator — the regime every experiment run
// actually spends its time in, where the event slab should make the
// scheduler allocation-free.
func BenchmarkScheduleRunSteady(b *testing.B) {
	s := New()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 100; j++ {
			s.Schedule(Time(j)*Nanosecond, fn)
		}
		s.Run()
	}
}

// BenchmarkShardWindow measures the conservative window machinery in
// Concurrent mode on a model that is actually shard-disjoint: four
// shards of self-rescheduling local ticks (40 events per shard per
// window) exchanging one cross-shard post per window. One op advances
// the engine by one lookahead, i.e. at least one full window barrier —
// drain, minimum scan, worker dispatch, join.
func BenchmarkShardWindow(b *testing.B) {
	const (
		k         = 4
		lookahead = Time(400)
		tick      = Time(10)
	)
	e := NewSharded(k, lookahead, Concurrent)
	for i := 0; i < k; i++ {
		sh := e.Shard(i)
		next := e.Shard((i + 1) % k)
		var localTick func()
		localTick = func() { sh.Schedule(tick, localTick) }
		sh.ScheduleAt(0, localTick)
		var relay func()
		relay = func() {
			sh.Post(next, sh.Now()+lookahead, func() {})
			sh.Schedule(lookahead, relay)
		}
		sh.ScheduleAt(Time(i), relay)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.RunUntil(Time(i+1) * lookahead)
	}
}
