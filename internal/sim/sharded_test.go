package sim

import (
	"hash/fnv"
	"runtime"
	"testing"
)

// traceRec is one committed event in a test model's execution record.
type traceRec struct {
	tag int
	at  Time
}

// buildLocalChains schedules the same purely region-local workload onto
// n region schedulers: interleaved chains with deliberate same-time
// collisions across regions, so the global commit order exercises the
// (time, seq) tie-break. record is called from inside each event.
func buildLocalChains(scheds []Scheduler, depth int, record func(region int, at Time)) {
	for r, s := range scheds {
		r, s := r, s
		var chain func(step int)
		chain = func(step int) {
			record(r, s.Now())
			if step >= depth {
				return
			}
			// Same-instant collisions: every region schedules at the same
			// absolute times, so ties are resolved purely by sequence.
			s.ScheduleAt(Time(step+1)*Microsecond, func() { chain(step + 1) })
			if step%3 == 0 {
				s.Schedule(500*Nanosecond, func() { record(r, s.Now()) })
			}
		}
		s.ScheduleAt(0, func() { chain(0) })
	}
}

// TestShardedOrderedMatchesSerial proves the Ordered engine's headline
// property: for the same model, the global commit order is identical to
// the serial Simulator's, event for event.
func TestShardedOrderedMatchesSerial(t *testing.T) {
	const regions, depth = 4, 50

	var serial []traceRec
	s := New()
	scheds := make([]Scheduler, regions)
	for i := range scheds {
		scheds[i] = s
	}
	buildLocalChains(scheds, depth, func(r int, at Time) {
		serial = append(serial, traceRec{tag: r, at: at})
	})
	s.RunUntil(depth * Microsecond)

	var sharded []traceRec
	e := NewSharded(regions, 20*Nanosecond, Ordered)
	for i := range scheds {
		scheds[i] = e.Shard(i)
	}
	buildLocalChains(scheds, depth, func(r int, at Time) {
		sharded = append(sharded, traceRec{tag: r, at: at})
	})
	e.RunUntil(depth * Microsecond)

	if len(serial) != len(sharded) {
		t.Fatalf("serial committed %d events, ordered sharded %d", len(serial), len(sharded))
	}
	for i := range serial {
		if serial[i] != sharded[i] {
			t.Fatalf("commit %d diverged: serial %+v, sharded %+v", i, serial[i], sharded[i])
		}
	}
	if s.Fired() != e.Fired() {
		t.Fatalf("fired: serial %d, sharded %d", s.Fired(), e.Fired())
	}
	if s.Now() != e.Now() {
		t.Fatalf("now: serial %v, sharded %v", s.Now(), e.Now())
	}
	if st := e.Stats(); st.Windows == 0 {
		t.Fatal("ordered run crossed no windows")
	}
}

// ringModel drives a shard-disjoint workload on a Sharded engine: each
// shard runs a local tick chain and posts a token to its ring neighbour
// with exactly the lookahead of latency. It returns per-shard digest
// chains of the committed (local) events.
func ringModel(e *Sharded, duration Time) []uint64 {
	k := e.NumShards()
	look := e.Lookahead()
	digests := make([]uint64, k)
	mix := func(sh int, tag int, at Time) {
		h := fnv.New64a()
		var b [24]byte
		for i := 0; i < 8; i++ {
			b[i] = byte(digests[sh] >> (8 * i))
			b[8+i] = byte(uint64(tag) >> (8 * i))
			b[16+i] = byte(uint64(at) >> (8 * i))
		}
		h.Write(b[:])
		digests[sh] = h.Sum64()
	}
	for i := 0; i < k; i++ {
		i := i
		sh := e.Shard(i)
		// Local chain with shard-dependent cadence.
		period := Time(300+40*i) * Nanosecond
		var tick func()
		tick = func() {
			mix(i, 1, sh.Now())
			sh.Schedule(period, tick)
		}
		sh.ScheduleAt(Time(i)*Nanosecond, tick)
	}
	// Cross-shard token ring: shard 0 launches a token that hops around
	// the ring forever, each hop after 50ns of local processing plus the
	// lookahead on the wire.
	e.Shard(0).ScheduleAt(100*Nanosecond, onTokenOf(e, 0, digests, mix))
	_ = look
	e.RunUntil(duration)
	return digests
}

// onTokenOf builds the receiving closure for a posted ring token; split
// out so the forwarding chain can be rebuilt at each hop without the
// closures capturing each other cyclically.
func onTokenOf(e *Sharded, idx int, digests []uint64, mix func(sh, tag int, at Time)) func() {
	sh := e.Shard(idx)
	next := (idx + 1) % e.NumShards()
	return func() {
		mix(idx, 2, sh.Now())
		sh.Schedule(50*Nanosecond, func() {
			mix(idx, 3, sh.Now())
			sh.Post(e.Shard(next), sh.Now()+e.Lookahead(), onTokenOf(e, next, digests, mix))
		})
	}
}

// TestShardedConcurrentMatchesOrdered proves Concurrent-mode
// determinism for a shard-disjoint model: per-shard digest chains are
// identical to the Ordered commit's, across repeat runs, and regardless
// of GOMAXPROCS.
func TestShardedConcurrentMatchesOrdered(t *testing.T) {
	const k = 4
	look := 20 * Nanosecond
	dur := 200 * Microsecond

	run := func(mode Mode) []uint64 {
		e := NewSharded(k, look, mode)
		return ringModel(e, dur)
	}

	ordered := run(Ordered)
	concurrent := run(Concurrent)
	for i := range ordered {
		if ordered[i] != concurrent[i] {
			t.Fatalf("shard %d digest: ordered %#x, concurrent %#x", i, ordered[i], concurrent[i])
		}
	}

	again := run(Concurrent)
	for i := range concurrent {
		if concurrent[i] != again[i] {
			t.Fatalf("shard %d digest changed across identical concurrent runs", i)
		}
	}

	prev := runtime.GOMAXPROCS(1)
	single := run(Concurrent)
	runtime.GOMAXPROCS(prev)
	for i := range concurrent {
		if concurrent[i] != single[i] {
			t.Fatalf("shard %d digest depends on GOMAXPROCS", i)
		}
	}

	e := NewSharded(k, look, Concurrent)
	ringModel(e, dur)
	st := e.Stats()
	if st.CrossPosts == 0 {
		t.Fatal("ring model produced no cross-shard posts")
	}
	if st.Windows == 0 {
		t.Fatal("concurrent run crossed no windows")
	}
}

// TestShardedRunUntilSemantics pins the deadline contract: an event at
// exactly the deadline fires, later events stay queued, and every clock
// ends at the deadline — matching the serial engine.
func TestShardedRunUntilSemantics(t *testing.T) {
	for _, mode := range []Mode{Ordered, Concurrent} {
		e := NewSharded(2, 10*Nanosecond, mode)
		var atDeadline, beyond bool
		e.Shard(0).ScheduleAt(Millisecond, func() { atDeadline = true })
		e.Shard(1).ScheduleAt(Millisecond+1, func() { beyond = true })
		e.RunUntil(Millisecond)
		if !atDeadline {
			t.Fatalf("%v: event at deadline did not fire", mode)
		}
		if beyond {
			t.Fatalf("%v: event beyond deadline fired", mode)
		}
		if e.Pending() != 1 {
			t.Fatalf("%v: pending = %d, want 1", mode, e.Pending())
		}
		if e.Now() != Millisecond {
			t.Fatalf("%v: now = %v, want 1ms", mode, e.Now())
		}
		for i := 0; i < 2; i++ {
			if got := e.Shard(i).Now(); got != Millisecond {
				t.Fatalf("%v: shard %d clock %v, want 1ms", mode, i, got)
			}
		}
		// Resuming picks the leftover event up.
		e.RunUntil(2 * Millisecond)
		if !beyond {
			t.Fatalf("%v: leftover event lost across RunUntil calls", mode)
		}
	}
}

// TestShardedStop stops mid-run and verifies the remaining events
// survive for a later resume.
func TestShardedStop(t *testing.T) {
	for _, mode := range []Mode{Ordered, Concurrent} {
		e := NewSharded(2, 10*Nanosecond, mode)
		fired := 0
		sh := e.Shard(0)
		for i := 1; i <= 10; i++ {
			i := i
			sh.ScheduleAt(Time(i)*Microsecond, func() {
				fired++
				if i == 3 {
					e.Stop()
				}
			})
		}
		e.RunUntil(Millisecond)
		if fired >= 10 {
			t.Fatalf("%v: Stop did not interrupt the run (fired %d)", mode, fired)
		}
		e.RunUntil(Millisecond)
		if fired != 10 {
			t.Fatalf("%v: resume after Stop fired %d events, want 10", mode, fired)
		}
	}
}

// TestShardedPostLookaheadPanics pins the conservative contract: a
// cross-shard post landing inside the current window is a bug, loudly.
func TestShardedPostLookaheadPanics(t *testing.T) {
	e := NewSharded(2, 100*Nanosecond, Ordered)
	a, b := e.Shard(0), e.Shard(1)
	a.ScheduleAt(Microsecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("post inside the window did not panic")
			}
		}()
		a.Post(b, a.Now()+10*Nanosecond, func() {})
	})
	e.RunUntil(2 * Microsecond)
}

// TestShardedConcurrentIdleSchedulePanics pins the misuse check: model
// code reaching across shards with Schedule instead of Post panics when
// the target shard is idle.
func TestShardedConcurrentIdleSchedulePanics(t *testing.T) {
	e := NewSharded(2, 100*Nanosecond, Concurrent)
	a, b := e.Shard(0), e.Shard(1)
	var caught any
	// Only shard 0 has work, so its window runs inline on the
	// coordinator goroutine and the panic is recoverable here.
	a.ScheduleAt(Microsecond, func() {
		defer func() { caught = recover() }()
		b.ScheduleAt(a.Now()+Microsecond, func() {})
	})
	e.RunUntil(2 * Microsecond)
	if caught == nil {
		t.Fatal("cross-shard Schedule onto an idle shard did not panic")
	}
}

// TestShardedCancel covers zero-value handles, cross-shard cancel in
// Ordered mode, and engine-level Cancel reaching any shard.
func TestShardedCancel(t *testing.T) {
	e := NewSharded(2, 10*Nanosecond, Ordered)
	if e.Cancel(Event{}) {
		t.Fatal("cancelling the zero Event succeeded")
	}
	fired := false
	ev := e.Shard(1).ScheduleAt(Microsecond, func() { fired = true })
	if !ev.Pending() {
		t.Fatal("scheduled event not pending")
	}
	// Ordered mode: shard 0 may cancel shard 1's event.
	if !e.Shard(0).Cancel(ev) {
		t.Fatal("ordered cross-shard cancel failed")
	}
	if ev.Pending() {
		t.Fatal("cancelled event still pending")
	}
	if e.Cancel(ev) {
		t.Fatal("double cancel succeeded")
	}
	e.RunUntil(2 * Microsecond)
	if fired {
		t.Fatal("cancelled event fired")
	}

	// A foreign engine's handle is refused, not corrupting.
	other := New()
	oev := other.Schedule(Microsecond, func() {})
	if e.Cancel(oev) {
		t.Fatal("cancelled another engine's event")
	}
	if !other.Cancel(oev) {
		t.Fatal("owner could not cancel its own event")
	}
}

// TestShardedWorkerPanicPropagates proves a model panic inside a
// concurrent window unwinds the RunUntil caller, like a serial panic.
func TestShardedWorkerPanicPropagates(t *testing.T) {
	e := NewSharded(4, 10*Nanosecond, Concurrent)
	for i := 0; i < 4; i++ {
		sh := e.Shard(i)
		sh.ScheduleAt(Microsecond, func() {})
	}
	e.Shard(2).ScheduleAt(Microsecond, func() { panic("model bug") })
	defer func() {
		if r := recover(); r != "model bug" {
			t.Fatalf("recovered %v, want the model panic", r)
		}
	}()
	e.RunUntil(2 * Microsecond)
	t.Fatal("worker panic did not propagate")
}

// TestShardedSingleShardDegenerate: one shard behaves exactly like the
// serial engine, with zero (unbounded) lookahead accepted.
func TestShardedSingleShardDegenerate(t *testing.T) {
	for _, mode := range []Mode{Ordered, Concurrent} {
		var serial, sharded []traceRec
		s := New()
		buildLocalChains([]Scheduler{s}, 30, func(r int, at Time) {
			serial = append(serial, traceRec{tag: r, at: at})
		})
		s.RunUntil(30 * Microsecond)

		e := NewSharded(1, 0, mode)
		buildLocalChains([]Scheduler{e.Shard(0)}, 30, func(r int, at Time) {
			sharded = append(sharded, traceRec{tag: r, at: at})
		})
		e.RunUntil(30 * Microsecond)

		if len(serial) != len(sharded) {
			t.Fatalf("%v: %d vs %d events", mode, len(serial), len(sharded))
		}
		for i := range serial {
			if serial[i] != sharded[i] {
				t.Fatalf("%v: commit %d diverged", mode, i)
			}
		}
	}
}
