// Differential determinism harness: the gate for the sharded engine.
//
// The serial Simulator is the golden reference. Every test here runs the
// same full-system experiment once per engine — serial, then sharded at
// 2, 4 and 8 regions — and requires the outputs to be identical: the
// rendered CSV tables byte for byte, and the packet-lifecycle event
// trace event for event. The sharded engine ships only while this file
// proves it indistinguishable from the reference.
//
// This lives in package sim_test (not sim) because it drives the whole
// stack through the root experiment API; the engine-local unit tests are
// in sharded_test.go.
package sim_test

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"ibasec"
	"ibasec/internal/core"
	"ibasec/internal/enforce"
	"ibasec/internal/sim"
	"ibasec/internal/trace"
)

// shardCounts are the parallel configurations differenced against the
// serial reference in every harness test.
var shardCounts = []int{2, 4, 8}

// quickBase mirrors cmd/ibsim's -quick configuration (seed 1, 2 ms,
// 200 µs warmup), the same base the golden CSV tests pin.
func quickBase() ibasec.Config {
	cfg := ibasec.DefaultConfig()
	cfg.Seed = 1
	cfg.Duration = 2 * ibasec.Millisecond
	cfg.Warmup = 200 * ibasec.Microsecond
	return cfg
}

// sweepTable runs one named quick sweep on an engine configuration and
// returns its rendered CSV bytes.
func sweepTable(t *testing.T, name string, shards int) []byte {
	t.Helper()
	base := quickBase()
	base.Shards = shards
	pool := ibasec.NewPool(ibasec.PoolOptions{Workers: 4, Retries: 1})
	ctx := context.Background()
	switch name {
	case "latency":
		base.RealtimeLoad = 0.7
		base.BestEffortLoad = 0.65
		rows, err := ibasec.Fig1Ctx(ctx, pool, ibasec.ClassRealtime, 2, base)
		if err != nil {
			t.Fatal(err)
		}
		return ibasec.Fig1CSV("fig1_realtime", rows).Bytes()
	case "dos":
		base.AttackCycle = base.Duration / 4
		rows, err := ibasec.Fig5Ctx(ctx, pool, []float64{0.4}, 0.05, base)
		if err != nil {
			t.Fatal(err)
		}
		return ibasec.Fig5CSV(rows).Bytes()
	case "keys":
		rows, err := ibasec.Fig6Ctx(ctx, pool, []float64{0.4}, ibasec.QPLevel, base)
		if err != nil {
			t.Fatal(err)
		}
		return ibasec.Fig6CSV(rows).Bytes()
	case "faults":
		rows, err := ibasec.FaultsSweepCtx(ctx, pool, []float64{0, 1e-5}, []int{0, 2}, base)
		if err != nil {
			t.Fatal(err)
		}
		return ibasec.FaultsCSV(rows).Bytes()
	}
	t.Fatalf("unknown sweep %q", name)
	return nil
}

// TestShardedSweepsByteIdentical is the headline gate: the latency, DoS
// and key-management quick sweeps — the same drivers and CSV renderers
// cmd/ibsim uses — must render byte-identical tables on the serial
// engine and on the sharded engine at 2, 4 and 8 regions.
func TestShardedSweepsByteIdentical(t *testing.T) {
	for _, name := range []string{"latency", "dos", "keys"} {
		name := name
		t.Run(name, func(t *testing.T) {
			want := sweepTable(t, name, 0)
			for _, k := range shardCounts {
				got := sweepTable(t, name, k)
				if !bytes.Equal(got, want) {
					t.Errorf("%s sweep at %d shards diverged from serial:\nserial:\n%s\nsharded:\n%s",
						name, k, want, got)
				}
			}
		})
	}
}

// TestShardedFaultsSweepByteIdentical extends the gate to the chaos
// sweep — link kills, BER bursts, re-sweep healing — which exercises the
// fault-injection epochs and the management plane under the sharded
// engine. Separate (and -short-skipped) because the 12-point grid per
// engine is the most expensive sweep in the harness.
func TestShardedFaultsSweepByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("12-point chaos sweep per engine configuration")
	}
	want := sweepTable(t, "faults", 0)
	for _, k := range shardCounts {
		if got := sweepTable(t, "faults", k); !bytes.Equal(got, want) {
			t.Errorf("faults sweep at %d shards diverged from serial:\nserial:\n%s\nsharded:\n%s",
				k, want, got)
		}
	}
}

// tracedRun executes one cluster with the packet-lifecycle recorder
// attached and returns the full event trace plus the engine's commit
// count — the strongest observable equality short of instrumenting the
// engine itself, since every enqueue/forward/filter/deliver observation
// carries its timestamp, node and packet identity in commit order.
func tracedRun(t *testing.T, shards int) ([]trace.Event, *core.Results, uint64) {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.Seed = 1
	cfg.Duration = 2 * sim.Millisecond
	cfg.Warmup = 200 * sim.Microsecond
	cfg.RealtimeLoad = 0.5
	cfg.BestEffortLoad = 0.4
	cfg.Attackers = 1
	cfg.AttackDuty = 0.5
	cfg.AttackCycle = cfg.Duration / 4
	cfg.Enforcement = enforce.SIF
	cfg.TraceCapacity = 1 << 15
	cfg.Shards = shards
	cl, err := core.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := cl.Simulate()
	return cl.Trace.Events(), res, cl.Sim.Fired()
}

// TestShardedEventTraceIdentical compares serial and sharded engines at
// the event level: the recorded packet-lifecycle stream (timestamps,
// kinds, nodes, packet identities, in commit order), the delay
// statistics, and the total number of events the engine fired must all
// match exactly.
func TestShardedEventTraceIdentical(t *testing.T) {
	refEvents, refRes, refFired := tracedRun(t, 0)
	if len(refEvents) == 0 {
		t.Fatal("reference run recorded no trace events")
	}
	for _, k := range shardCounts {
		events, res, fired := tracedRun(t, k)
		if fired != refFired {
			t.Errorf("%d shards: fired %d events, serial fired %d", k, fired, refFired)
		}
		if len(events) != len(refEvents) {
			t.Fatalf("%d shards: %d trace events, serial %d", k, len(events), len(refEvents))
		}
		for i := range events {
			if events[i] != refEvents[i] {
				t.Fatalf("%d shards: trace diverges at event %d:\nserial:  %v\nsharded: %v",
					k, i, refEvents[i], events[i])
			}
		}
		if !reflect.DeepEqual(res.Realtime, refRes.Realtime) ||
			!reflect.DeepEqual(res.BestEffort, refRes.BestEffort) {
			t.Errorf("%d shards: delay statistics diverged from serial", k)
		}
		if res.DeliveredLegit != refRes.DeliveredLegit || res.AttackDelivered != refRes.AttackDelivered ||
			res.FilterDropped != refRes.FilterDropped || res.TrapsSent != refRes.TrapsSent {
			t.Errorf("%d shards: counters diverged: %+v vs %+v", k, res, refRes)
		}
	}
}

// TestShardedWindowCensus checks that the Ordered engine actually
// exercised its windowing machinery on a real cluster run — the
// invariant counters the referee mode maintains are only trustworthy if
// windows and would-be-unsafe schedules are being counted at all. The
// paper testbed's control plane schedules zero-latency upcalls
// constantly, so a 20 ns-lookahead run must census a large number of
// schedules that conservative windows alone would forbid: the measured
// justification for shipping Ordered mode as the cluster default
// (DESIGN.md §13.6).
func TestShardedWindowCensus(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Seed = 1
	cfg.Duration = sim.Millisecond
	cfg.Warmup = 100 * sim.Microsecond
	cfg.BestEffortLoad = 0.4
	cfg.Shards = 4
	cl, err := core.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cl.Simulate()
	eng, ok := cl.Sim.(*sim.Sharded)
	if !ok {
		t.Fatalf("Shards=4 built %T, want *sim.Sharded", cl.Sim)
	}
	stats := eng.Stats()
	if stats.Windows == 0 {
		t.Fatal("engine advanced no windows")
	}
	if stats.UnsafeSchedules == 0 {
		t.Fatal("census found no unsafe schedules; the lookahead-crisis rationale in DESIGN.md §13.6 no longer holds — re-evaluate Concurrent mode for the cluster")
	}
	t.Logf("windows=%d crossPosts=%d unsafeSchedules=%d",
		stats.Windows, stats.CrossPosts, stats.UnsafeSchedules)
}
