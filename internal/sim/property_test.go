package sim

import (
	"math/rand"
	"sort"
	"testing"
)

// TestPropertyHeapTotalOrder drives the event queue with a long random
// mix of schedules, cancels and reschedules, then checks the surviving
// events fire in exactly (time, schedule-sequence) order against a
// model kept as a plain sorted slice.
func TestPropertyHeapTotalOrder(t *testing.T) {
	type rec struct {
		at  Time
		seq int // model-side schedule order
	}
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		s := New()
		var fired []rec
		var model []rec
		handles := make(map[int]Event) // seq -> live handle
		seq := 0

		schedule := func(at Time) {
			id := seq
			seq++
			handles[id] = s.ScheduleAt(at, func() { fired = append(fired, rec{at, id}) })
			model = append(model, rec{at, id})
		}
		// Clustered times force heavy same-instant tie-breaking.
		for i := 0; i < 400; i++ {
			schedule(Time(rng.Intn(50)))
		}
		for i := 0; i < 600; i++ {
			switch rng.Intn(3) {
			case 0:
				schedule(Time(rng.Intn(50)))
			case 1: // cancel a random live event
				for id, ev := range handles {
					if s.Cancel(ev) {
						for j, m := range model {
							if m.seq == id {
								model = append(model[:j], model[j+1:]...)
								break
							}
						}
					}
					delete(handles, id)
					break
				}
			case 2: // reschedule: cancel + fresh schedule at a new time
				for id, ev := range handles {
					if s.Cancel(ev) {
						for j, m := range model {
							if m.seq == id {
								model = append(model[:j], model[j+1:]...)
								break
							}
						}
						schedule(Time(rng.Intn(50)))
					}
					delete(handles, id)
					break
				}
			}
		}
		s.Run()

		sort.SliceStable(model, func(i, j int) bool {
			if model[i].at != model[j].at {
				return model[i].at < model[j].at
			}
			return model[i].seq < model[j].seq
		})
		if len(fired) != len(model) {
			t.Fatalf("trial %d: fired %d events, model has %d", trial, len(fired), len(model))
		}
		for i := range fired {
			if fired[i] != model[i] {
				t.Fatalf("trial %d: commit %d fired %+v, model expects %+v", trial, i, fired[i], model[i])
			}
		}
	}
}

// TestPropertySlabGenerations checks the slab's generation discipline
// under random churn: a handle that fired or was cancelled must report
// Pending false and refuse Cancel forever, even after its slot has been
// recycled arbitrarily many times.
func TestPropertySlabGenerations(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := New()
	type dead struct {
		ev   Event
		slot *eventSlot
		gen  uint64
	}
	var graveyard []dead
	live := map[*eventSlot]Event{}

	for round := 0; round < 2000; round++ {
		switch rng.Intn(3) {
		case 0, 1:
			ev := s.Schedule(Time(rng.Intn(10)), func() {})
			live[ev.slot] = ev
		case 2:
			for slot, ev := range live {
				if !s.Cancel(ev) {
					t.Fatalf("round %d: live handle refused cancel", round)
				}
				graveyard = append(graveyard, dead{ev, slot, ev.gen})
				delete(live, slot)
				break
			}
		}
		if rng.Intn(10) == 0 {
			// Drain everything; all live handles die by firing.
			s.Run()
			for slot, ev := range live {
				graveyard = append(graveyard, dead{ev, slot, ev.gen})
				delete(live, slot)
			}
		}
		// Every dead handle must stay dead: its slot either sits free or
		// has been recycled under a bumped generation.
		for _, d := range graveyard {
			if d.ev.Pending() {
				t.Fatalf("round %d: dead handle reports pending", round)
			}
			if s.Cancel(d.ev) {
				t.Fatalf("round %d: dead handle cancelled something", round)
			}
			if d.slot.index >= 0 && d.slot.gen == d.gen {
				t.Fatalf("round %d: slot recycled without a generation bump", round)
			}
		}
		if len(graveyard) > 512 {
			graveyard = graveyard[len(graveyard)-512:]
		}
	}
}

// TestPropertyPendingMatchesQueue cross-checks Pending against the
// queue's actual contents after random schedule/cancel churn.
func TestPropertyPendingMatchesQueue(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s := New()
	events := map[int]Event{}
	cancelled := map[int]bool{}
	for i := 0; i < 500; i++ {
		events[i] = s.Schedule(Time(rng.Intn(100)), func() {})
	}
	for i := 0; i < 250; i++ {
		id := rng.Intn(500)
		if !cancelled[id] {
			s.Cancel(events[id])
			cancelled[id] = true
		}
	}
	pending := 0
	for id, ev := range events {
		if ev.Pending() != !cancelled[id] {
			t.Fatalf("event %d: Pending=%v cancelled=%v", id, ev.Pending(), cancelled[id])
		}
		if ev.Pending() {
			pending++
		}
	}
	if got := s.Pending(); got != pending {
		t.Fatalf("queue holds %d events, handles say %d", got, pending)
	}
}

// TestZeroValues pins the zero-value behaviour of the exported types: a
// zero Event is inert (never pending, cancel is a no-op returning
// false), and a zero Simulator is directly usable — its queue
// lazily initializes on first schedule.
func TestZeroValues(t *testing.T) {
	var ev Event
	if ev.Pending() {
		t.Fatal("zero Event pending")
	}
	if ev.At() != 0 {
		t.Fatal("zero Event has a fire time")
	}

	var s Simulator
	if s.Cancel(ev) {
		t.Fatal("zero Simulator cancelled a zero Event")
	}
	if s.Now() != 0 || s.Pending() != 0 || s.Fired() != 0 {
		t.Fatal("zero Simulator not at origin")
	}
	ran := false
	s.Schedule(5, func() { ran = true })
	s.Run()
	if !ran || s.Now() != 5 || s.Fired() != 1 {
		t.Fatalf("zero Simulator run: ran=%v now=%v fired=%d", ran, s.Now(), s.Fired())
	}
	// Run on an empty, never-scheduled zero Simulator must return
	// immediately.
	var idle Simulator
	idle.Run()
	if idle.Fired() != 0 {
		t.Fatal("idle zero Simulator fired events")
	}
}

// TestCancelForeignSimulatorRefused checks that one simulator's queue
// refuses a handle minted by another, even when slot addresses and
// generations would otherwise line up.
func TestCancelForeignSimulatorRefused(t *testing.T) {
	a, b := New(), New()
	ea := a.Schedule(1, func() {})
	if b.Cancel(ea) {
		t.Fatal("simulator b cancelled simulator a's event")
	}
	if !ea.Pending() {
		t.Fatal("foreign cancel attempt killed the event")
	}
	if !a.Cancel(ea) {
		t.Fatal("owner could not cancel its own event")
	}
}
