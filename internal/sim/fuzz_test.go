package sim

import (
	"fmt"
	"testing"
)

// FuzzShardWindow feeds random shard counts, lookaheads and event
// programs to the sharded engine and checks the conservative-window
// invariants that the hand-written tests can only probe pointwise:
//
//   - no event executes outside its shard's current safe window
//     [windowEnd-lookahead, windowEnd) during a Concurrent run;
//   - every cross-shard post fires exactly at its requested time, which
//     is never in the receiving shard's past;
//   - per-shard clocks are monotonic;
//   - the Concurrent commit order per shard is identical to the Ordered
//     engine running the same program.
//
// The input bytes are a program: the first two choose the shard count
// and lookahead, the rest are split round-robin into per-shard op
// streams consumed as events fire (each op schedules local work, posts
// to a sibling, or halts that branch). Per-shard streams keep the
// program deterministic under both commit modes — a global stream would
// be consumed in nondeterministic order by concurrent workers.
func FuzzShardWindow(f *testing.F) {
	f.Add([]byte{4, 20, 0x31, 0x72, 0xa5, 0x00, 0x9b, 0x44, 0x17, 0xe8, 0x6c, 0x2d})
	f.Add([]byte{2, 1, 0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{8, 200, 0x01, 0x42, 0x83, 0xc4, 0x05, 0x46, 0x87, 0xc8, 0x09, 0x4a, 0x8b, 0xcc})
	f.Add([]byte{1, 5, 0x11, 0x22})
	f.Add([]byte{3, 7})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		k := int(data[0])%8 + 1
		lookahead := Time(data[1])%256 + 1
		ops := data[2:]
		if len(ops) > 1024 {
			ops = ops[:1024]
		}

		// Deal the ops round-robin into per-shard streams.
		streams := make([][]byte, k)
		for i, b := range ops {
			streams[i%k] = append(streams[i%k], b)
		}

		// run executes the program and returns each shard's commit trace.
		run := func(mode Mode) [][]string {
			e := NewSharded(k, lookahead, mode)
			traces := make([][]string, k)
			cursors := make([]int, k)
			var lastNow []Time = make([]Time, k)

			var fire func(shard int, label string)
			step := func(shard int) {
				sh := e.Shard(shard)
				now := sh.Now()
				if mode == Concurrent {
					// Safe-window invariant: the coordinator publishes
					// windowEnd before workers start and joins them before
					// changing it, so reading it here is race-free.
					if now >= e.windowEnd {
						panic(fmt.Sprintf("shard %d executing at %v, window ends %v", shard, now, e.windowEnd))
					}
					if now+lookahead < e.windowEnd {
						panic(fmt.Sprintf("shard %d executing at %v, before window start %v",
							shard, now, e.windowEnd-lookahead))
					}
				}
				if now < lastNow[shard] {
					panic(fmt.Sprintf("shard %d clock went backwards: %v after %v", shard, now, lastNow[shard]))
				}
				lastNow[shard] = now
				if cursors[shard] >= len(streams[shard]) {
					return
				}
				op := streams[shard][cursors[shard]]
				cursors[shard]++
				delta := Time(op>>4) + 1
				switch op % 4 {
				case 0: // one local follow-up
					sh.Schedule(delta, func() { fire(shard, "l") })
				case 1: // two local follow-ups at the same instant
					sh.Schedule(delta, func() { fire(shard, "a") })
					sh.Schedule(delta, func() { fire(shard, "b") })
				case 2: // cross-shard post at the earliest admissible time
					dst := e.Shard(int(op>>2) % k)
					at := sh.Now() + lookahead + delta
					sh.Post(dst, at, func() {
						if got := dst.Now(); got != at {
							panic(fmt.Sprintf("post to shard %d asked for %v, fired at %v", dst.ID(), at, got))
						}
						fire(dst.ID(), "x")
					})
				case 3: // halt this branch
				}
			}
			fire = func(shard int, label string) {
				traces[shard] = append(traces[shard], fmt.Sprintf("%s@%d", label, e.Shard(shard).Now()))
				step(shard)
			}
			for i := 0; i < k; i++ {
				i := i
				e.Shard(i).ScheduleAt(Time(i), func() { fire(i, "seed") })
			}
			e.RunUntil(1 << 20)
			return traces
		}

		ordered := run(Ordered)
		concurrent := run(Concurrent)
		for shard := range ordered {
			if len(ordered[shard]) != len(concurrent[shard]) {
				t.Fatalf("shard %d: ordered committed %d events, concurrent %d\nordered:    %v\nconcurrent: %v",
					shard, len(ordered[shard]), len(concurrent[shard]), ordered[shard], concurrent[shard])
			}
			for i := range ordered[shard] {
				if ordered[shard][i] != concurrent[shard][i] {
					t.Fatalf("shard %d diverges at commit %d: ordered %s, concurrent %s",
						shard, i, ordered[shard][i], concurrent[shard][i])
				}
			}
		}
	})
}
