// Conservative parallel discrete-event engine.
//
// A Sharded engine partitions the model into shards — link-connected
// regions of the fabric, each owning its own event queue and state — and
// advances them in lookahead-bounded safe windows. The lookahead is the
// minimum latency of any interaction that crosses a shard boundary (for
// the fabric: the minimum cut-link propagation delay), so within a
// window [T, T+lookahead) no shard can affect another and every shard's
// events may execute independently. Cross-shard interactions travel
// through per-shard mailboxes (Post) and are only admitted at or beyond
// the window end, which is what makes the window safe; the mailboxes
// are drained at each window barrier in a deterministic order.
//
// Two commit modes share all of that machinery:
//
//   - Ordered runs the merged stream on one goroutine in exactly the
//     serial Simulator's total order (time, then a global schedule
//     sequence assigned at Schedule time). It is provably
//     event-for-event identical to the serial engine for any model, so
//     full-cluster runs — whose measurement and control planes still
//     share state across shards — can use the sharded data structures
//     today and be gated by byte-identical goldens. The window and
//     mailbox bookkeeping still runs and is invariant-checked, and
//     ShardStats.UnsafeSchedules counts every scheduling that would
//     have been a conservative-discipline violation under concurrency.
//
//   - Concurrent executes each window on a worker pool, one goroutine
//     per active shard. It is sound only for models whose mutable state
//     is shard-local and whose cross-shard effects all travel through
//     Post; determinism then follows from per-shard sequence numbers
//     and the sorted mailbox drain, independent of GOMAXPROCS.
package sim

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// Mode selects how a Sharded engine commits events.
type Mode int

const (
	// Ordered merges all shards on one goroutine in the serial engine's
	// exact total order. Safe for any model.
	Ordered Mode = iota
	// Concurrent runs each window's active shards in parallel. Safe only
	// for shard-disjoint models (see the package comment above).
	Concurrent
)

func (m Mode) String() string {
	if m == Concurrent {
		return "concurrent"
	}
	return "ordered"
}

// ShardStats reports what the conservative machinery did during a run.
// Read it between runs; it is not synchronized against a live window.
type ShardStats struct {
	// Windows is the number of safe-window barriers crossed.
	Windows uint64
	// CrossPosts is the number of mailbox events delivered between
	// shards.
	CrossPosts uint64
	// UnsafeSchedules counts events scheduled directly onto a foreign
	// shard from inside another shard's executing event (Ordered mode
	// only). Each one is a synchronous cross-shard interaction that did
	// not travel through Post — under Concurrent execution it would be a
	// data race on the target shard's queue regardless of its timestamp.
	// The census of how far a model is from being runnable in Concurrent
	// mode.
	UnsafeSchedules uint64
}

// xpost is one mailbox entry: a cross-shard event awaiting admission at
// the next window barrier. src/seq order entries deterministically when
// several arrive for the same instant.
type xpost struct {
	at  Time
	src int
	seq uint64
	fn  func()
}

// Shard is one region's scheduler. It implements Scheduler, so model
// code built against that interface runs unmodified on a shard. All
// methods must be called from the shard's own executing events (or from
// outside any run); Post is the only sanctioned way to reach another
// shard.
type Shard struct {
	eng *Sharded
	id  int
	q   eventQueue

	now     Time
	seq     uint64 // Concurrent-mode schedule order, shard-local
	postSeq uint64 // orders this shard's outgoing posts
	fired   uint64

	mu    sync.Mutex
	inbox []xpost

	// executing is set while a worker drains this shard's window; it
	// backs the best-effort misuse check in ScheduleAt.
	executing atomic.Bool
}

// ID returns the shard's index within its engine.
func (sh *Shard) ID() int { return sh.id }

// Engine returns the Sharded engine this shard belongs to.
func (sh *Shard) Engine() *Sharded { return sh.eng }

// Now returns the shard's clock: the engine's global clock in Ordered
// mode, the shard-local clock in Concurrent mode.
func (sh *Shard) Now() Time {
	if sh.eng.mode == Ordered {
		return sh.eng.now
	}
	return sh.now
}

// Schedule queues fn on this shard after delay.
func (sh *Shard) Schedule(delay Time, fn func()) Event {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	return sh.ScheduleAt(sh.Now()+delay, fn)
}

// ScheduleAt queues fn on this shard at absolute time at. In Concurrent
// mode it must only be called by this shard's own events: scheduling
// onto an idle foreign shard mid-run panics (scheduling onto an
// executing foreign shard is a data race this check cannot see; Post is
// the only safe cross-shard channel).
func (sh *Shard) ScheduleAt(at Time, fn func()) Event {
	e := sh.eng
	if fn == nil {
		panic("sim: nil event function")
	}
	if at < sh.Now() {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, sh.Now()))
	}
	var seq uint64
	if e.mode == Ordered {
		seq = e.seq
		e.seq++
		if e.running && e.cur != nil && e.cur != sh {
			e.stats.UnsafeSchedules++
		}
	} else {
		if e.running && !sh.executing.Load() {
			panic(fmt.Sprintf("sim: schedule onto idle shard %d during a concurrent window", sh.id))
		}
		seq = sh.seq
		sh.seq++
	}
	return sh.q.push(at, seq, fn)
}

// Cancel removes a pending event scheduled on this shard (or, in Ordered
// mode, any shard of the engine — the merge loop is single-threaded, so
// delegating to the owning queue is safe). Cancelling a foreign shard's
// event during a Concurrent run panics.
func (sh *Shard) Cancel(ev Event) bool {
	sl := ev.slot
	if sl == nil || sl.gen != ev.gen || sl.index < 0 {
		return false
	}
	if sl.owner == &sh.q {
		return sh.q.cancel(ev)
	}
	e := sh.eng
	for _, o := range e.shards {
		if sl.owner != &o.q {
			continue
		}
		if e.mode == Concurrent && e.running {
			panic("sim: cross-shard Cancel during a concurrent run")
		}
		return o.q.cancel(ev)
	}
	// Not an event of this engine at all.
	return false
}

// Every runs fn each period on this shard until cancelled.
func (sh *Shard) Every(period Time, fn func()) (cancel func()) {
	return every(sh, period, fn)
}

// Post schedules fn on dst at absolute time at — the only sanctioned
// cross-shard interaction. During a run, at must not precede the current
// window's end: the conservative contract that admitted windows cannot
// be affected retroactively. Violating it panics. Posts are buffered in
// dst's mailbox and admitted at the next barrier, ordered by
// (at, posting shard, posting sequence), so drain order is deterministic
// regardless of worker interleaving. Posting to sh itself degenerates to
// ScheduleAt.
func (sh *Shard) Post(dst *Shard, at Time, fn func()) {
	e := sh.eng
	if dst == nil || dst.eng != e {
		panic("sim: Post to a shard of a different engine")
	}
	if fn == nil {
		panic("sim: nil event function")
	}
	if at < sh.Now() {
		panic(fmt.Sprintf("sim: cross-shard post at %v before now %v", at, sh.Now()))
	}
	if e.running && at < e.windowEnd {
		panic(fmt.Sprintf("sim: cross-shard post at %v inside the window ending at %v (lookahead %v)",
			at, e.windowEnd, e.lookahead))
	}
	if dst == sh {
		sh.ScheduleAt(at, fn)
		return
	}
	p := xpost{at: at, src: sh.id, seq: sh.postSeq, fn: fn}
	sh.postSeq++
	dst.mu.Lock()
	dst.inbox = append(dst.inbox, p)
	dst.mu.Unlock()
}

// runWindow drains this shard's events with timestamps < wend. Called by
// a worker (or inline) in Concurrent mode only.
func (sh *Shard) runWindow(wend Time) {
	sh.executing.Store(true)
	e := sh.eng
	for !e.stopped.Load() {
		h := sh.q.head()
		if h == nil || h.at >= wend {
			break
		}
		sl := sh.q.pop()
		sh.now = sl.at
		sh.fired++
		fn := sl.fn
		sh.q.release(sl)
		sh.q.shrink()
		fn()
	}
	sh.executing.Store(false)
}

// Sharded is the conservative parallel engine. Construct with
// NewSharded, hand each model region its Shard, and drive it through
// the Engine interface. Engine-level Scheduler calls (Schedule, Every,
// ...) land on shard 0, the natural home for control-plane work that is
// not tied to a region.
type Sharded struct {
	mode      Mode
	lookahead Time
	shards    []*Shard

	now       Time
	windowEnd Time
	seq       uint64 // Ordered-mode global schedule order
	running   bool
	cur       *Shard // Ordered mode: the shard whose event is executing
	stopped   atomic.Bool
	stats     ShardStats
}

// NewSharded returns an engine with the given shard count and lookahead.
// lookahead is the minimum cross-shard interaction latency; it must be
// positive when there is more than one shard. With a single shard any
// value (including zero: unbounded windows) is accepted, and the engine
// degenerates to serial execution.
func NewSharded(shards int, lookahead Time, mode Mode) *Sharded {
	if shards <= 0 {
		panic(fmt.Sprintf("sim: %d shards", shards))
	}
	if shards > 1 && lookahead <= 0 {
		panic("sim: a multi-shard engine requires positive lookahead")
	}
	e := &Sharded{mode: mode, lookahead: lookahead}
	for i := 0; i < shards; i++ {
		e.shards = append(e.shards, &Shard{eng: e, id: i})
	}
	return e
}

// NumShards returns the shard count.
func (e *Sharded) NumShards() int { return len(e.shards) }

// Shard returns shard i.
func (e *Sharded) Shard(i int) *Shard { return e.shards[i] }

// Mode returns the engine's commit mode.
func (e *Sharded) Mode() Mode { return e.mode }

// Lookahead returns the engine's lookahead.
func (e *Sharded) Lookahead() Time { return e.lookahead }

// Stats returns the conservative machinery's counters. Read between
// runs.
func (e *Sharded) Stats() ShardStats { return e.stats }

// Now returns the engine clock: in Ordered mode the time of the last
// committed event, in Concurrent mode the start of the current (or last)
// window — a lower bound on every shard clock.
func (e *Sharded) Now() Time { return e.now }

// Fired returns the number of events executed, summed over shards. Read
// between runs.
func (e *Sharded) Fired() uint64 {
	var n uint64
	for _, sh := range e.shards {
		n += sh.fired
	}
	return n
}

// Pending returns queued events across all shards and mailboxes.
func (e *Sharded) Pending() int {
	n := 0
	for _, sh := range e.shards {
		n += sh.q.len()
		sh.mu.Lock()
		n += len(sh.inbox)
		sh.mu.Unlock()
	}
	return n
}

// Schedule queues fn on shard 0 after delay.
func (e *Sharded) Schedule(delay Time, fn func()) Event {
	return e.shards[0].Schedule(delay, fn)
}

// ScheduleAt queues fn on shard 0 at absolute time at.
func (e *Sharded) ScheduleAt(at Time, fn func()) Event {
	return e.shards[0].ScheduleAt(at, fn)
}

// Cancel removes a pending event via shard 0 (which, in Ordered mode,
// reaches events on any shard).
func (e *Sharded) Cancel(ev Event) bool { return e.shards[0].Cancel(ev) }

// Every runs fn each period on shard 0 until cancelled.
func (e *Sharded) Every(period Time, fn func()) (cancel func()) {
	return e.shards[0].Every(period, fn)
}

// Stop makes the innermost Run or RunUntil return early: after the
// current event in Ordered mode, after the current per-shard event in
// Concurrent mode (the window still barriers before returning).
func (e *Sharded) Stop() { e.stopped.Store(true) }

// Run fires events until none remain or Stop is called.
func (e *Sharded) Run() { e.run(Time(math.MaxInt64), false) }

// RunUntil fires events with timestamps <= deadline, then advances every
// clock to the deadline. Events beyond the deadline stay queued.
func (e *Sharded) RunUntil(deadline Time) { e.run(deadline, true) }

func (e *Sharded) run(deadline Time, advance bool) {
	e.stopped.Store(false)
	e.running = true
	defer func() { e.running = false }()

	var pool *windowPool
	if e.mode == Concurrent && len(e.shards) > 1 {
		pool = newWindowPool(e)
		defer pool.close()
	}

	for !e.stopped.Load() {
		e.drainInboxes()
		t, ok := e.minTime()
		if !ok || t > deadline {
			break
		}
		// The safe window [t, wend): nothing another shard does in it can
		// reach this shard before wend, because every cross-shard
		// interaction carries at least the lookahead of latency. wend is
		// clamped to deadline+1 so an event at exactly the deadline still
		// fires, matching the serial engine.
		wend := Time(math.MaxInt64)
		if e.lookahead > 0 && t <= wend-e.lookahead {
			wend = t + e.lookahead
		}
		if deadline < Time(math.MaxInt64) && wend > deadline+1 {
			wend = deadline + 1
		}
		e.windowEnd = wend
		e.now = t
		e.stats.Windows++
		if e.mode == Ordered {
			e.runWindowOrdered(wend)
		} else {
			e.runWindowConcurrent(pool, wend)
		}
	}
	e.drainInboxes()
	if advance && !e.stopped.Load() && e.now < deadline {
		e.now = deadline
	}
	for _, sh := range e.shards {
		if sh.now < e.now {
			sh.now = e.now
		}
	}
}

// minTime returns the earliest pending event time across shards.
// Mailboxes are already drained when it is called.
func (e *Sharded) minTime() (Time, bool) {
	var min Time
	ok := false
	for _, sh := range e.shards {
		if h := sh.q.head(); h != nil && (!ok || h.at < min) {
			min, ok = h.at, true
		}
	}
	return min, ok
}

// runWindowOrdered commits every event below wend in global (time, seq)
// order — the serial Simulator's exact total order, because seq is the
// global counter assigned at Schedule time. Events scheduled during the
// window below wend are committed within it too, exactly as the serial
// engine would.
func (e *Sharded) runWindowOrdered(wend Time) {
	for !e.stopped.Load() {
		var best *Shard
		for _, sh := range e.shards {
			h := sh.q.head()
			if h == nil || h.at >= wend {
				continue
			}
			if best == nil {
				best = sh
				continue
			}
			bh := best.q.head()
			if h.at < bh.at || (h.at == bh.at && h.seq < bh.seq) {
				best = sh
			}
		}
		if best == nil {
			break
		}
		sl := best.q.pop()
		e.now = sl.at
		best.now = sl.at
		best.fired++
		e.cur = best
		fn := sl.fn
		best.q.release(sl)
		best.q.shrink()
		fn()
	}
	e.cur = nil
}

// runWindowConcurrent dispatches every shard with work below wend to the
// worker pool and barriers on their completion. A single active shard
// runs inline, sparing the handoff.
func (e *Sharded) runWindowConcurrent(pool *windowPool, wend Time) {
	var only *Shard
	n := 0
	for _, sh := range e.shards {
		if h := sh.q.head(); h != nil && h.at < wend {
			only = sh
			n++
		}
	}
	if n == 0 {
		return
	}
	if n == 1 || pool == nil {
		only.runWindow(wend)
		return
	}
	pool.wg.Add(n)
	for _, sh := range e.shards {
		if h := sh.q.head(); h != nil && h.at < wend {
			pool.jobs <- shardJob{sh: sh, wend: wend}
		}
	}
	pool.wg.Wait()
	// A panic inside a worker's window is re-raised here so it unwinds
	// the caller exactly as a serial engine's callback panic would.
	if p := pool.panicked.Load(); p != nil {
		panic(*p)
	}
}

// drainInboxes admits every buffered cross-shard post into its
// destination queue. Entries are sorted by (at, posting shard, posting
// sequence) and assigned commit sequence numbers in that order, so the
// admitted order is a pure function of the model, not of worker timing.
func (e *Sharded) drainInboxes() {
	for _, sh := range e.shards {
		sh.mu.Lock()
		posts := sh.inbox
		sh.inbox = sh.inbox[:0]
		sh.mu.Unlock()
		if len(posts) == 0 {
			continue
		}
		sort.Slice(posts, func(i, j int) bool {
			if posts[i].at != posts[j].at {
				return posts[i].at < posts[j].at
			}
			if posts[i].src != posts[j].src {
				return posts[i].src < posts[j].src
			}
			return posts[i].seq < posts[j].seq
		})
		for i := range posts {
			var seq uint64
			if e.mode == Ordered {
				seq = e.seq
				e.seq++
			} else {
				seq = sh.seq
				sh.seq++
			}
			sh.q.push(posts[i].at, seq, posts[i].fn)
			posts[i].fn = nil
		}
		e.stats.CrossPosts += uint64(len(posts))
	}
}

// shardJob is one window's work order for a shard.
type shardJob struct {
	sh   *Shard
	wend Time
}

// windowPool is the per-run worker pool for Concurrent mode. Workers
// live for one Run/RunUntil call; the channel handoff provides the
// happens-before edge that publishes each shard's state to whichever
// worker picks it up next window.
type windowPool struct {
	jobs     chan shardJob
	wg       sync.WaitGroup // per-window barrier
	done     sync.WaitGroup // worker exit
	panicked atomic.Pointer[any]
}

func newWindowPool(e *Sharded) *windowPool {
	p := &windowPool{jobs: make(chan shardJob, len(e.shards))}
	n := runtime.GOMAXPROCS(0)
	if n > len(e.shards) {
		n = len(e.shards)
	}
	p.done.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer p.done.Done()
			for j := range p.jobs {
				p.runOne(j)
			}
		}()
	}
	return p
}

// runOne executes one shard's window, converting a callback panic into a
// stored value for the coordinator (and stopping the engine so the other
// shards wind down at their next event boundary).
func (p *windowPool) runOne(j shardJob) {
	defer p.wg.Done()
	defer func() {
		if r := recover(); r != nil {
			p.panicked.CompareAndSwap(nil, &r)
			j.sh.eng.Stop()
			j.sh.executing.Store(false)
		}
	}()
	j.sh.runWindow(j.wend)
}

func (p *windowPool) close() {
	close(p.jobs)
	p.done.Wait()
}
