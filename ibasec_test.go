package ibasec

import (
	"testing"
	"time"
)

// The facade must expose a working end-to-end path: this is the package
// a downstream user imports.
func TestFacadeRun(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Duration = 2 * Millisecond
	cfg.Warmup = 200 * Microsecond
	cfg.Attackers = 2
	cfg.Enforcement = SIF
	cfg.Auth = AuthConfig{Enabled: true, FuncID: AuthUMAC32, Level: PartitionLevel}

	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.DeliveredLegit == 0 || res.PacketsSigned == 0 {
		t.Fatalf("delivered=%d signed=%d", res.DeliveredLegit, res.PacketsSigned)
	}
	if res.AuthFail != 0 {
		t.Fatalf("authFail=%d", res.AuthFail)
	}
	q, n := res.Combined()
	if q < 0 || n <= 0 {
		t.Fatalf("combined stats %v/%v", q, n)
	}
}

func TestFacadeExperiments(t *testing.T) {
	if rows := Table2(4, 0.01, 2); len(rows) != 3 {
		t.Fatalf("Table2 rows = %d", len(rows))
	}
	if rows := Table4(64, 5*time.Millisecond, 2.0); len(rows) != 4 {
		t.Fatalf("Table4 rows = %d", len(rows))
	}
	rates := PaperTable4Rates()
	if len(rates) != 4 || rates["UMAC"] != 4.00 {
		t.Fatalf("paper rates = %v", rates)
	}
	for _, o := range AttackMatrix(11) {
		if o.SucceededAuth {
			t.Fatalf("%s: defence failed via facade", o.Key)
		}
	}
}

func TestFacadeAuthRateSweep(t *testing.T) {
	base := DefaultConfig()
	base.Duration = 2 * Millisecond
	base.Warmup = 200 * Microsecond
	rows, err := AuthRateSweep(map[string]float64{"fast": 10, "slow": 0.3}, 0.5, base)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	var fast, slow AuthRateRow
	for _, r := range rows {
		if r.Name == "fast" {
			fast = r
		} else {
			slow = r
		}
	}
	if slow.Bottleneck == false || fast.Bottleneck == true {
		t.Fatal("bottleneck flags wrong")
	}
	// A slower-than-link MAC engine must visibly throttle the node.
	if slow.QueuingUS < 5*fast.QueuingUS {
		t.Fatalf("slow engine queuing %.2f not >> fast %.2f", slow.QueuingUS, fast.QueuingUS)
	}
	if slow.Delivered >= fast.Delivered {
		t.Fatalf("slow engine delivered %d >= fast %d", slow.Delivered, fast.Delivered)
	}
}
