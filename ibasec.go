// Package ibasec is a from-scratch reproduction of "Security Enhancement
// in InfiniBand Architecture" (Lee, Kim, Yousif — IPPS 2005): a
// packet-level InfiniBand fabric simulator plus the paper's three
// security mechanisms —
//
//  1. stateful partition enforcement in switches (DPT / IF / SIF,
//     section 3),
//  2. partition-level and QP-level authentication-key management
//     (section 4), and
//  3. ICRC-as-MAC packet authentication that stores a 32-bit tag in the
//     Invariant CRC field without changing the IBA packet format
//     (section 5).
//
// The package re-exports the library's public surface; the underlying
// implementation lives in internal/ subpackages (simulator, packet
// formats, CRC, UMAC, fabric, transport, subnet manager, workloads).
//
// Quick start:
//
//	cfg := ibasec.DefaultConfig()
//	cfg.Attackers = 4
//	res, err := ibasec.Run(cfg)
//	// res.BestEffort.Queuing.Mean() is the paper's queuing-time metric.
//
// Every table and figure of the paper's evaluation has a regeneration
// entry point here (Fig1, Fig5, Fig6, Table2, Table4, AttackMatrix) and a
// corresponding benchmark in bench_test.go; the cmd/ibsim CLI prints
// them.
package ibasec

import (
	"context"
	"time"

	"ibasec/internal/attack"
	"ibasec/internal/core"
	"ibasec/internal/enforce"
	"ibasec/internal/fabric"
	"ibasec/internal/faults"
	"ibasec/internal/mac"
	"ibasec/internal/runner"
	"ibasec/internal/sim"
	"ibasec/internal/sm"
	"ibasec/internal/topology"
	"ibasec/internal/transport"
)

// Core configuration and results.
type (
	// Config describes one simulation run; start from DefaultConfig.
	Config = core.Config
	// AuthConfig selects the authentication mechanism and key level.
	AuthConfig = core.AuthConfig
	// HAParams configures standby subnet managers and master election;
	// the zero value runs the classic single SM.
	HAParams = core.HAParams
	// RekeyParams configures online key-epoch rotation; the zero value
	// keeps every secret at epoch 0.
	RekeyParams = core.RekeyParams
	// PolicyParams configures the declarative security policy plane and
	// its continuous drift auditor; the zero value keeps the imperative
	// bring-up path.
	PolicyParams = core.PolicyParams
	// Results holds a run's measurements (delays in microseconds).
	Results = core.Results
	// Cluster is a fully wired simulation instance (advanced use).
	Cluster = core.Cluster
)

// Experiment row types.
type (
	Fig1Row       = core.Fig1Row
	Fig5Row       = core.Fig5Row
	Fig6Row       = core.Fig6Row
	Table2Row     = core.Table2Row
	Table4Row     = core.Table4Row
	AuthRateRow   = core.AuthRateRow
	SMFloodRow    = core.SMFloodRow
	ScaleRow      = core.ScaleRow
	FaultRow      = core.FaultRow
	FailoverRow   = core.FailoverRow
	SplitBrainRow = core.SplitBrainRow
	APMRow        = core.APMRow
	DriftRow      = core.DriftRow
	CongestionRow = core.CongestionRow
	HealthRow     = core.HealthRow
	// AttackOutcome is one row of the Table 3 attack matrix.
	AttackOutcome = attack.Outcome
)

// APMArm is one recovery configuration of the apm experiment.
type APMArm = core.APMArm

// Recovery arms: plain timeout, explicit NAK, NAK plus path migration
// with the migrating sources SIF-registered, and the same without
// registration (the enforcement drop cliff).
const (
	ArmTimeout         = core.ArmTimeout
	ArmNAK             = core.ArmNAK
	ArmAPMRegistered   = core.ArmAPMRegistered
	ArmAPMUnregistered = core.ArmAPMUnregistered
)

// Deterministic fault injection and self-healing (internal/faults and the
// SM's periodic re-sweep).
type (
	// FaultPlan is a complete, seed-deterministic fault schedule: link and
	// switch down/up events, bit-error bursts, MAD drop/delay.
	FaultPlan = faults.Plan
	// LinkKill, SwitchKill, BERBurst and MADLoss are FaultPlan entries.
	LinkKill   = faults.LinkKill
	SwitchKill = faults.SwitchKill
	BERBurst   = faults.BERBurst
	MADLoss    = faults.MADLoss
	// SMKill kills the active subnet manager; KeyCompromise forces an
	// out-of-cycle epoch rotation of one partition.
	SMKill        = faults.SMKill
	KeyCompromise = faults.KeyCompromise
	// TableCorruption mutates a switch's programmed enforcement state
	// out-of-band — the drift the policy auditor exists to catch.
	TableCorruption = faults.TableCorruption
	// CorruptOp selects what a TableCorruption does.
	CorruptOp = faults.CorruptOp
	// LinkID names one full-duplex link from its switch side.
	LinkID = topology.LinkID
	// LinkBER degrades one link's bit-error rate for a window — the
	// gray-failure fault the health plane exists to catch.
	LinkBER = faults.LinkBER
	// Resweeper is the SM's periodic self-healing loop (Cluster.Resweeper
	// when Config.ResweepPeriod > 0).
	Resweeper = sm.Resweeper
	// HealEvent reports one completed healing round.
	HealEvent = sm.HealEvent
	// PerfMgr is the health plane's sweep/score/quarantine loop
	// (Cluster.PerfMgr when Config.Health is enabled).
	PerfMgr = sm.PerfMgr
	// HealthEvent reports one quarantine transition.
	HealthEvent = sm.HealthEvent
	// HealthParams configures the health plane through Config.Health;
	// the zero value disables it.
	HealthParams = core.HealthParams
	// PortCounters is one port's IBA error-counter block (saturating,
	// PerfMgr-swept).
	PortCounters = fabric.PortCounters
)

// OscillatingBER builds the adversarial flapping-link plan: the link's
// bit-error rate toggles between rate and clean every half period over
// [from, until) — the route-churn attack flap damping bounds.
func OscillatingBER(link LinkID, rate float64, period, from, until Time) []LinkBER {
	return faults.OscillatingBER(link, rate, period, from, until)
}

// Table-corruption operations and symbolic switch targets (resolved
// against the built cluster: the attacker's or the victim's ingress).
const (
	CorruptAddValid      = faults.CorruptAddValid
	CorruptRemoveValid   = faults.CorruptRemoveValid
	CorruptClearInvalid  = faults.CorruptClearInvalid
	CorruptDropAltSource = faults.CorruptDropAltSource
	CorruptDeactivate    = faults.CorruptDeactivate

	SwitchAttackerIngress = faults.SwitchAttackerIngress
	SwitchVictimIngress   = faults.SwitchVictimIngress
)

// ChaosPlan builds a deterministic random plan of transient inter-switch
// link outages for a w×h mesh that never partitions the fabric; same
// seed, same plan.
func ChaosPlan(seed int64, w, h, kills int, from, until Time) *FaultPlan {
	return faults.Chaos(seed, w, h, kills, from, until)
}

// Mode is a switch partition-enforcement design.
type Mode = enforce.Mode

// Enforcement modes (paper section 3.3).
const (
	NoFiltering = enforce.NoFiltering
	DPT         = enforce.DPT
	IF          = enforce.IF
	SIF         = enforce.SIF
)

// KeyLevel selects the authentication-key management scheme.
type KeyLevel = transport.KeyLevel

// Key management levels (paper sections 4.2-4.3).
const (
	PartitionLevel = transport.PartitionLevel
	QPLevel        = transport.QPLevel
)

// ArbitrationMode selects the fabric's VL arbiter.
type ArbitrationMode = fabric.ArbitrationMode

// VL arbiter choices (strict priority is the paper's default; weighted is
// the IBA 7.6.9 two-table design).
const (
	ArbStrictPriority = fabric.ArbStrictPriority
	ArbWeighted       = fabric.ArbWeighted
)

// CCParams configures the IBA Congestion Control Annex (switch FECN
// marking thresholds and per-HCA congestion control tables) through
// Config.Congestion; the zero value disables congestion control.
type CCParams = fabric.CCParams

// DefaultCCParams returns the congestion-control settings the
// congestion experiment uses for its CC-on arms.
func DefaultCCParams() CCParams { return core.DefaultCCParams() }

// Class is a traffic class.
type Class = fabric.Class

// Traffic classes (Table 1's two workloads plus the management lane).
const (
	ClassBestEffort = fabric.ClassBestEffort
	ClassRealtime   = fabric.ClassRealtime
	ClassManagement = fabric.ClassManagement
)

// Authentication function IDs for AuthConfig.FuncID (stored in the BTH
// Resv8a byte on the wire).
const (
	AuthHMACMD5  = mac.IDHMACMD5
	AuthHMACSHA1 = mac.IDHMACSHA1
	AuthUMAC32   = mac.IDUMAC32
)

// Time aliases for configuring durations.
type Time = sim.Time

// Duration units.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// DefaultConfig returns the paper's Table 1 testbed configuration: a 4x4
// mesh of 5-port switches, 2.5 Gb/s links, 16 VLs per link, MTU 1024.
func DefaultConfig() Config { return core.DefaultConfig() }

// Run simulates one configuration and returns its measurements.
func Run(cfg Config) (*Results, error) { return core.Run(cfg) }

// Build assembles a cluster without starting traffic (advanced use).
func Build(cfg Config) (*Cluster, error) { return core.Build(cfg) }

// Fig1 regenerates Figure 1: queuing time and network latency versus the
// number of line-rate attackers, for the given traffic class.
func Fig1(class Class, maxAttackers int, base Config) ([]Fig1Row, error) {
	return core.Fig1(class, maxAttackers, base)
}

// Fig5 regenerates Figure 5: the NoFiltering/DPT/IF/SIF delay comparison
// across input loads under a duty-cycled four-attacker DoS.
func Fig5(loads []float64, attackDuty float64, base Config) ([]Fig5Row, error) {
	return core.Fig5(loads, attackDuty, base)
}

// Fig6 regenerates Figure 6: authentication and key-initialization
// overhead (No Key vs With Key) across input loads.
func Fig6(loads []float64, level KeyLevel, base Config) ([]Fig6Row, error) {
	return core.Fig6(loads, level, base)
}

// Table2 evaluates the partition-enforcement cost model for p partitions
// per node with attack probability prAttack and average invalid-table
// size avgInvalid.
func Table2(p int, prAttack, avgInvalid float64) []Table2Row {
	return core.Table2Rows(p, prAttack, avgInvalid)
}

// Table4 measures the MAC algorithms on msgBytes messages for roughly
// budget wall time each, reporting Gb/s, cycles/byte at cpuGHz, and
// forgery probability.
func Table4(msgBytes int, budget time.Duration, cpuGHz float64) []Table4Row {
	return core.Table4(msgBytes, budget, cpuGHz)
}

// AttackMatrix runs the Table 3 key-theft scenarios against plain and
// authenticated IBA.
func AttackMatrix(seed int64) []AttackOutcome { return attack.Matrix(seed) }

// SweepDuty is a beyond-paper ablation: SIF exposure versus attack duty
// cycle at a fixed load.
func SweepDuty(duties []float64, load float64, base Config) ([]Fig5Row, error) {
	return core.SweepDuty(duties, load, base)
}

// AuthRateSweep runs the section 5.2/7 link-speed question: cluster delay
// when the MAC engine digests messages at each given throughput (Gb/s).
func AuthRateSweep(rates map[string]float64, load float64, base Config) ([]AuthRateRow, error) {
	return core.AuthRateSweep(rates, load, base)
}

// PaperTable4Rates returns the paper's Table 4 throughput column for use
// with AuthRateSweep.
func PaperTable4Rates() map[string]float64 { return core.PaperTable4Rates() }

// SMFloodSweep quantifies the section-7 management-DoS attack: SIF
// registration latency as junk MADs flood the Subnet Manager.
func SMFloodSweep(rates []float64, base Config) ([]SMFloodRow, error) {
	return core.SMFloodSweep(rates, base)
}

// ScaleSweep measures DoS damage across mesh sizes (beyond-paper
// ablation).
func ScaleSweep(sizes [][2]int, base Config) ([]ScaleRow, error) {
	return core.ScaleSweep(sizes, base)
}

// FaultsSweep runs the chaos experiment: deterministic link outages and
// bit-error bursts against a self-healing subnet, sweeping BER ×
// concurrent link kills per enforcement design.
func FaultsSweep(bers []float64, kills []int, base Config) ([]FaultRow, error) {
	return core.FaultsSweep(bers, kills, base)
}

// Parallel experiment orchestration (internal/runner). A Pool executes
// a sweep's simulation points on a bounded worker pool with panic
// recovery, bounded retry, live progress, and — when a Manifest is
// attached — an append-only result store that lets interrupted runs
// resume without re-executing finished points. Results are reassembled
// by job index, so output is byte-identical to the serial harness at a
// fixed seed regardless of worker count.
type (
	// Pool is a bounded worker pool for experiment sweeps.
	Pool = runner.Pool
	// PoolOptions configures a Pool (workers, retries, backoff,
	// progress writer, manifest).
	PoolOptions = runner.Options
	// Manifest is the append-only JSON-lines result store.
	Manifest = runner.Store
)

// NewPool returns a worker pool; Workers <= 0 means GOMAXPROCS.
func NewPool(opts PoolOptions) *Pool { return runner.New(opts) }

// OpenManifest opens (or creates) the JSON-lines result manifest at
// path. label fingerprints the run configuration; when resume is true
// and the existing manifest carries the same label, completed points
// are served from it instead of re-running.
func OpenManifest(path, label string, resume bool) (*Manifest, error) {
	return runner.Open(path, label, resume)
}

// DeriveSeed deterministically derives a per-job seed from a base seed,
// an experiment name and a point key.
func DeriveSeed(base int64, experiment, key string) int64 {
	return runner.DeriveSeed(base, experiment, key)
}

// Context- and pool-aware variants of the sweep harnesses. A nil pool
// runs the points serially, matching the plain functions above.
func Fig1Ctx(ctx context.Context, pool *Pool, class Class, maxAttackers int, base Config) ([]Fig1Row, error) {
	return core.Fig1Ctx(ctx, pool, class, maxAttackers, base)
}

// Fig5Ctx is Fig5 with cancellation and an optional worker pool.
func Fig5Ctx(ctx context.Context, pool *Pool, loads []float64, attackDuty float64, base Config) ([]Fig5Row, error) {
	return core.Fig5Ctx(ctx, pool, loads, attackDuty, base)
}

// Fig6Ctx is Fig6 with cancellation and an optional worker pool.
func Fig6Ctx(ctx context.Context, pool *Pool, loads []float64, level KeyLevel, base Config) ([]Fig6Row, error) {
	return core.Fig6Ctx(ctx, pool, loads, level, base)
}

// SweepDutyCtx is SweepDuty with cancellation and an optional worker pool.
func SweepDutyCtx(ctx context.Context, pool *Pool, duties []float64, load float64, base Config) ([]Fig5Row, error) {
	return core.SweepDutyCtx(ctx, pool, duties, load, base)
}

// AuthRateSweepCtx is AuthRateSweep with cancellation and an optional
// worker pool.
func AuthRateSweepCtx(ctx context.Context, pool *Pool, rates map[string]float64, load float64, base Config) ([]AuthRateRow, error) {
	return core.AuthRateSweepCtx(ctx, pool, rates, load, base)
}

// SMFloodSweepCtx is SMFloodSweep with cancellation and an optional
// worker pool.
func SMFloodSweepCtx(ctx context.Context, pool *Pool, rates []float64, base Config) ([]SMFloodRow, error) {
	return core.SMFloodSweepCtx(ctx, pool, rates, base)
}

// ScaleSweepCtx is ScaleSweep with cancellation and an optional worker
// pool.
func ScaleSweepCtx(ctx context.Context, pool *Pool, sizes [][2]int, base Config) ([]ScaleRow, error) {
	return core.ScaleSweepCtx(ctx, pool, sizes, base)
}

// FaultsSweepCtx is FaultsSweep with cancellation and an optional worker
// pool.
func FaultsSweepCtx(ctx context.Context, pool *Pool, bers []float64, kills []int, base Config) ([]FaultRow, error) {
	return core.FaultsSweepCtx(ctx, pool, bers, kills, base)
}

// FailoverSweep runs the SM-failover / key-rotation experiment: the
// master SM is killed mid-run (and, when rotation is on, one partition
// key force-rotated after a compromise), sweeping standby count ×
// heartbeat interval × rekey period.
func FailoverSweep(standbys []int, heartbeatsUS []int, rekeysUS []int, base Config) ([]FailoverRow, error) {
	return core.FailoverSweep(standbys, heartbeatsUS, rekeysUS, base)
}

// FailoverSweepCtx is FailoverSweep with cancellation and an optional
// worker pool.
func FailoverSweepCtx(ctx context.Context, pool *Pool, standbys []int, heartbeatsUS []int, rekeysUS []int, base Config) ([]FailoverRow, error) {
	return core.FailoverSweepCtx(ctx, pool, standbys, heartbeatsUS, rekeysUS, base)
}

// SplitBrainSweep runs the split-brain experiment: the mesh is bisected
// mid-run with the master and the standby on opposite sides of the cut,
// each island elects or keeps a contained master, and the heal drives
// the merge protocol — abdication, bounded re-sweep, key-epoch
// reconciliation — sweeping partition duration × heartbeat × rekey
// period. All axes are in microseconds; a rekey of 0 disables rotation.
func SplitBrainSweep(partitionsUS, heartbeatsUS, rekeysUS []int, base Config) ([]SplitBrainRow, error) {
	return core.SplitBrainSweep(partitionsUS, heartbeatsUS, rekeysUS, base)
}

// SplitBrainSweepCtx is SplitBrainSweep with cancellation and an
// optional worker pool.
func SplitBrainSweepCtx(ctx context.Context, pool *Pool, partitionsUS, heartbeatsUS, rekeysUS []int, base Config) ([]SplitBrainRow, error) {
	return core.SplitBrainSweepCtx(ctx, pool, partitionsUS, heartbeatsUS, rekeysUS, base)
}

// APMSweep runs the RC recovery experiment: a mid-run primary-path link
// kill (plus optional BER bursts) against RC probe flows, sweeping BER ×
// link kills × recovery arm (timeout-only, explicit NAK, NAK+APM with
// SIF-registered alternate sources, NAK+APM unregistered).
func APMSweep(bers []float64, kills []int, base Config) ([]APMRow, error) {
	return core.APMSweep(bers, kills, base)
}

// APMSweepCtx is APMSweep with cancellation and an optional worker pool.
func APMSweepCtx(ctx context.Context, pool *Pool, bers []float64, kills []int, base Config) ([]APMRow, error) {
	return core.APMSweepCtx(ctx, pool, bers, kills, base)
}

// DriftSweep runs the policy-drift experiment: switch enforcement state
// is corrupted out-of-band mid-run and the declarative policy plane's
// auditor detects (and optionally repairs) the divergence, sweeping
// enforcement design × audit period × repair arm. Periods are in
// microseconds; 0 runs the no-auditor baseline.
func DriftSweep(periodsUS []int, base Config) ([]DriftRow, error) {
	return core.DriftSweep(periodsUS, base)
}

// DriftSweepCtx is DriftSweep with cancellation and an optional worker
// pool.
func DriftSweepCtx(ctx context.Context, pool *Pool, periodsUS []int, base Config) ([]DriftRow, error) {
	return core.DriftSweepCtx(ctx, pool, periodsUS, base)
}

// CongestionSweep runs the congestion-control experiment: one attacker
// floods the best-effort VL for the first 60% of the run and the IBA
// Congestion Control Annex (switch FECN marking, destination BECN/CNP
// reflection, source-side CCT injection throttling) is compared against
// the same flood with the annex off, sweeping enforcement design ×
// attacker injection rate × CC arm.
func CongestionSweep(rates []float64, base Config) ([]CongestionRow, error) {
	return core.CongestionSweep(rates, base)
}

// HealthSweep runs the flaky-link health-plane experiment: one central
// inter-switch link under a stepped BER ramp or an adversarial
// oscillating-BER attack, with the PerfMgr off, on undamped, or on with
// flap damping, measuring detection latency, loss before/after
// quarantine, false positives, route churn and MAD overhead.
func HealthSweep(bers []float64, base Config) ([]HealthRow, error) {
	return core.HealthSweep(bers, base)
}

// HealthSweepCtx is HealthSweep with cancellation and an optional
// worker pool; a nil pool runs the points serially.
func HealthSweepCtx(ctx context.Context, pool *Pool, bers []float64, base Config) ([]HealthRow, error) {
	return core.HealthSweepCtx(ctx, pool, bers, base)
}

// CongestionSweepCtx is CongestionSweep with cancellation and an
// optional worker pool.
func CongestionSweepCtx(ctx context.Context, pool *Pool, rates []float64, base Config) ([]CongestionRow, error) {
	return core.CongestionSweepCtx(ctx, pool, rates, base)
}

// CSVTable is one experiment's rows rendered for an encoding/csv writer.
// The renderers below are the single source of truth for experiment CSV
// formatting: cmd/ibsim and the golden-determinism tests both go through
// them, so a golden diff can only mean the simulation itself changed.
type CSVTable = core.CSVTable

// Fig1CSV renders a Figure 1 sweep under the given table name.
func Fig1CSV(name string, rows []Fig1Row) CSVTable { return core.Fig1CSV(name, rows) }

// Fig5CSV renders the enforcement-mode delay comparison (Figure 5).
func Fig5CSV(rows []Fig5Row) CSVTable { return core.Fig5CSV(rows) }

// Fig6CSV renders the authentication-overhead sweep (Figure 6).
func Fig6CSV(rows []Fig6Row) CSVTable { return core.Fig6CSV(rows) }

// FaultsCSV renders the chaos sweep (link kills + BER bursts).
func FaultsCSV(rows []FaultRow) CSVTable { return core.FaultsCSV(rows) }

// FailoverCSV renders the SM-failover / key-rotation sweep.
func FailoverCSV(rows []FailoverRow) CSVTable { return core.FailoverCSV(rows) }

// SplitBrainCSV renders the split-brain / merge-reconciliation sweep.
func SplitBrainCSV(rows []SplitBrainRow) CSVTable { return core.SplitBrainCSV(rows) }

// APMCSV renders the RC recovery / path-migration sweep.
func APMCSV(rows []APMRow) CSVTable { return core.APMCSV(rows) }

// DriftCSV renders the policy-drift sweep.
func DriftCSV(rows []DriftRow) CSVTable { return core.DriftCSV(rows) }

// CongestionCSV renders the congestion-control sweep.
func CongestionCSV(rows []CongestionRow) CSVTable { return core.CongestionCSV(rows) }

// HealthCSV renders the flaky-link health-plane sweep.
func HealthCSV(rows []HealthRow) CSVTable { return core.HealthCSV(rows) }
