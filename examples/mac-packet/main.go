// mac-packet dissects the paper's core trick at the byte level: the same
// 32-bit field at the tail of an IBA packet serves as the Invariant CRC
// (error detection, forgeable) or, when BTH.Resv8a names a MAC function,
// as an authentication tag (unforgeable without the secret key) — with
// zero change to the packet format (paper section 5.1, Figure 4).
package main

import (
	"fmt"
	"log"

	"ibasec/internal/icrc"
	"ibasec/internal/keys"
	"ibasec/internal/mac"
	"ibasec/internal/packet"
)

func main() {
	p := &packet.Packet{
		LRH:     packet.LRH{VL: 0, SLID: 3, DLID: 9},
		BTH:     packet.BTH{OpCode: packet.UDSendOnly, PKey: 0x8001, DestQP: 42, PSN: 1001},
		DETH:    &packet.DETH{QKey: 0x1234, SrcQP: 7},
		Payload: []byte("transfer $100 to account 7"),
	}

	// --- Mode 1: plain ICRC (BTH.Resv8a = 0) ---
	if err := icrc.Seal(p); err != nil {
		log.Fatal(err)
	}
	wire := p.Marshal()
	fmt.Printf("packet: %v\n", p)
	fmt.Printf("wire bytes: %d, ICRC=0x%08X VCRC=0x%04X\n\n", len(wire), p.ICRC, p.VCRC)

	// The ICRC catches corruption...
	wire[30] ^= 0x01
	ok, _ := icrc.VerifyICRC(wire)
	fmt.Printf("bit flipped on the wire -> ICRC valid? %v (error detected)\n", ok)
	wire[30] ^= 0x01

	// ...but an attacker just recomputes it after tampering: CRC is not
	// authentication (Table 4: forgery probability 1).
	forged := p.Clone()
	forged.Payload = []byte("transfer $999999 to EVIL42")
	if err := icrc.Seal(forged); err != nil {
		log.Fatal(err)
	}
	ok, _ = icrc.VerifyICRC(forged.Marshal())
	fmt.Printf("attacker rewrites payload + recomputes CRC -> ICRC valid? %v (forgery accepted!)\n\n", ok)

	// --- Mode 2: the same field as a UMAC-32 authentication tag ---
	secret, err := keys.NewSecretKey(randReader{})
	if err != nil {
		log.Fatal(err)
	}
	auth := mac.NewUMAC32()

	signed := p.Clone()
	signed.BTH.AuthID = auth.ID() // Resv8a: variant field, ICRC-transparent
	if err := signed.Finalize(); err != nil {
		log.Fatal(err)
	}
	region, _ := icrc.InvariantRegion(signed.Marshal())
	nonce := keys.Nonce(signed.DETH.SrcQP, signed.BTH.DestQP, signed.BTH.PSN)
	tag, err := auth.Tag(secret[:], region, nonce)
	if err != nil {
		log.Fatal(err)
	}
	signed.ICRC = tag
	if err := icrc.Seal(signed); err != nil { // recomputes only the VCRC
		log.Fatal(err)
	}
	fmt.Printf("signed packet: AuthID=%d (%s), AT=0x%08X in the ICRC field\n",
		signed.BTH.AuthID, auth.Name(), signed.ICRC)

	verify := func(q *packet.Packet) bool {
		r, _ := icrc.InvariantRegion(q.Marshal())
		n := keys.Nonce(q.DETH.SrcQP, q.BTH.DestQP, q.BTH.PSN)
		ok, _ := mac.Verify(auth, secret[:], r, n, q.ICRC)
		return ok
	}
	fmt.Printf("receiver with the secret key verifies -> %v\n", verify(signed))

	// The attacker tampers and recomputes... what? Without the secret
	// key the best move is a guess: 2^-30 per try.
	forged2 := signed.Clone()
	forged2.Payload = []byte("transfer $999999 to EVIL42")
	forged2.Finalize()
	forged2.ICRC = 0xBADC0DE5 // guessed tag
	fmt.Printf("attacker forges payload + guesses tag -> verifies? %v (forgery rejected)\n", verify(forged2))

	// Switches can still remap the VL: the tag, like the ICRC, covers
	// only invariant fields, so the packet stays valid end to end.
	remapped := signed.Clone()
	remapped.LRH.VL = 5
	fmt.Printf("switch remaps VL in flight -> still verifies? %v (format-compatible)\n", verify(remapped))
}

// randReader is a tiny deterministic byte source so the example's output
// is stable run to run.
type randReader struct{}

func (randReader) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = byte(i*37 + 11)
	}
	return len(p), nil
}
