// dos-defense walks through the paper's availability story (sections 3
// and 6): it sweeps the number of attackers to show Figure 1's queuing
// blow-up, then compares the four partition-enforcement designs under a
// duty-cycled attack (Figure 5), and finally prints the Table 2 cost
// model that justifies SIF.
package main

import (
	"fmt"
	"log"

	"ibasec"
)

func main() {
	base := ibasec.DefaultConfig()
	base.Duration = 10 * ibasec.Millisecond
	base.Warmup = ibasec.Millisecond
	base.RealtimeLoad = 0.7
	base.BestEffortLoad = 0.65

	fmt.Println("== Figure 1: one compromised node is enough ==")
	for _, class := range []ibasec.Class{ibasec.ClassRealtime, ibasec.ClassBestEffort} {
		rows, err := ibasec.Fig1(class, 4, base)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s traffic:\n", class)
		for _, r := range rows {
			bar := ""
			for i := 0; i < int(r.QueuingUS/5); i++ {
				bar += "#"
			}
			fmt.Printf("  %d attacker(s): queuing %7.2f us %s\n", r.Attackers, r.QueuingUS, bar)
		}
	}

	fmt.Println()
	fmt.Println("== Figure 5: enforcement designs under a one-percent-duty DoS ==")
	f5 := base
	f5.AttackCycle = f5.Duration / 4
	rows, err := ibasec.Fig5([]float64{0.4, 0.6}, 0.01, f5)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range rows {
		fmt.Printf("  load %2.0f%%  %-11s total %7.2f us   filtered %4d   leaked to victims %d\n",
			r.Load*100, r.Mode, r.TotalUS, r.Dropped, r.AttackHits)
	}

	fmt.Println()
	fmt.Println("== Table 2: why SIF — the cost model ==")
	for _, r := range ibasec.Table2(4, 0.01, 2) {
		fmt.Printf("  %-4s mem/switch %6.2f entries   lookups/packet %.4f (linear scan)\n",
			r.Mode, r.MemPerSwitch, r.LookupLinear)
	}
	fmt.Println("\nSIF pays the IF memory price but looks up only while an attack is live.")
}
