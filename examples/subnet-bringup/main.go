// subnet-bringup boots a completely unconfigured InfiniBand fabric the
// way a real Subnet Manager does: directed-route SMPs sweep the mesh hop
// by hop, discover every switch and channel adapter, assign LIDs, and
// program the forwarding tables — all in-band, with every Set operation
// guarded by the M_Key (the key whose theft tops the paper's Table 3).
package main

import (
	"fmt"
	"log"
	"sort"

	"ibasec/internal/fabric"
	"ibasec/internal/icrc"
	"ibasec/internal/keys"
	"ibasec/internal/packet"
	"ibasec/internal/sim"
	"ibasec/internal/sm"
	"ibasec/internal/topology"
)

const mkey = keys.MKey(0x5EC0DE)

func main() {
	s := sim.New()
	mesh := topology.NewBlankMesh(s, fabric.DefaultParams(), 4, 4)
	sm.AttachSwitchAgents(mesh, mkey)
	for _, hca := range mesh.HCAs {
		sm.AttachNodeAgent(hca, mkey)
	}

	fmt.Println("power-on state: no LIDs, no routes")
	fmt.Printf("  node 5 LID = %d, switch 0 routes LID 6? ", mesh.HCA(5).LID())
	_, ok := mesh.Switches[0].Route(6)
	fmt.Println(ok)
	fmt.Println()

	// The SM on node 0 sweeps the fabric.
	disc := sm.NewDiscoverer(s, mesh.HCA(0), mkey, 50*sim.Microsecond)
	var topo *sm.DiscoveredTopology
	disc.Discover(func(tp *sm.DiscoveredTopology) { topo = tp })
	s.Run()
	if topo == nil {
		log.Fatal("discovery did not complete")
	}

	fmt.Printf("sweep complete at t=%v:\n", s.Now())
	fmt.Printf("  %d switches, %d channel adapters discovered\n", len(topo.Switches), len(topo.CAs))
	fmt.Printf("  %d SMP probes, %d dead-port timeouts\n", topo.Probes, topo.Timeouts)

	var lids []int
	for _, hca := range mesh.HCAs {
		lids = append(lids, int(hca.LID()))
	}
	sort.Ints(lids)
	fmt.Printf("  LIDs assigned: %v\n", lids)
	var routes uint64
	for _, sw := range mesh.Switches {
		routes += sw.Counters.Get("smp_routes_set")
	}
	fmt.Printf("  forwarding entries programmed in-band: %d\n\n", routes)

	// Prove the fabric works: send a data packet corner to corner.
	pk := packet.PKey(0x8001)
	mesh.HCA(0).PKeyTable.Add(pk)
	mesh.HCA(15).PKeyTable.Add(pk)
	delivered := false
	prev := mesh.HCA(15).OnDeliver
	mesh.HCA(15).OnDeliver = func(d *fabric.Delivery) {
		if d.Class == fabric.ClassManagement {
			prev(d)
			return
		}
		delivered = true
	}
	p := &packet.Packet{
		LRH:     packet.LRH{SLID: mesh.HCA(0).LID(), DLID: mesh.HCA(15).LID()},
		BTH:     packet.BTH{OpCode: packet.UDSendOnly, PKey: pk, DestQP: 1},
		DETH:    &packet.DETH{QKey: 1, SrcQP: 1},
		Payload: []byte("hello from a self-configured fabric"),
	}
	if err := icrc.Seal(p); err != nil {
		log.Fatal(err)
	}
	mesh.HCA(0).Send(&fabric.Delivery{Pkt: p, Class: fabric.ClassBestEffort, VL: fabric.VLBestEffort})
	s.Run()
	fmt.Printf("corner-to-corner data packet delivered: %v\n\n", delivered)

	// And the security angle: a rogue SM without the M_Key can look but
	// not touch.
	s2 := sim.New()
	mesh2 := topology.NewBlankMesh(s2, fabric.DefaultParams(), 2, 2)
	sm.AttachSwitchAgents(mesh2, mkey)
	for _, hca := range mesh2.HCAs {
		sm.AttachNodeAgent(hca, mkey)
	}
	rogue := sm.NewDiscoverer(s2, mesh2.HCA(0), keys.MKey(0xBAD), 50*sim.Microsecond)
	rogue.Discover(func(*sm.DiscoveredTopology) {})
	s2.Run()
	var violations uint64
	for _, sw := range mesh2.Switches {
		violations += sw.Counters.Get("smp_mkey_violations")
	}
	fmt.Printf("rogue SM without the M_Key: %d Set operations rejected, fabric untouched\n", violations)
	fmt.Println("(Table 3, M_Key row: whoever holds this key owns the subnet)")
}
