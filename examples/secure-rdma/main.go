// secure-rdma demonstrates the paper's Table 3 R_Key threat and its fix
// at the transport layer: an RDMA write lands in a victim's memory with
// nothing but a stolen R_Key on plain IBA, and is rejected once QP-level
// authentication keys (section 4.3) gate the connection.
//
// This example drives the library's internal transport layer directly to
// show the verification pipeline; the top-level ibasec package wraps the
// same machinery for whole-cluster experiments.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ibasec/internal/fabric"
	"ibasec/internal/icrc"
	"ibasec/internal/keys"
	"ibasec/internal/mac"
	"ibasec/internal/packet"
	"ibasec/internal/sim"
	"ibasec/internal/topology"
	"ibasec/internal/transport"
)

const pkey = packet.PKey(0x8001)

// buildWorld wires a 2x2 mesh with a transport endpoint per node.
func buildWorld(withAuth bool) (*sim.Simulator, *topology.Mesh, []*transport.Endpoint) {
	rng := rand.New(rand.NewSource(42))
	s := sim.New()
	mesh := topology.NewMesh(s, fabric.DefaultParams(), 2, 2)
	dir := keys.NewDirectory()
	var kps []*keys.NodeKeyPair
	for i := 0; i < mesh.NumNodes(); i++ {
		kp, err := keys.GenerateNodeKeyPair(rng)
		if err != nil {
			log.Fatal(err)
		}
		kps = append(kps, kp)
		dir.Register(mesh.HCA(i).Name(), kp.Public())
	}
	var eps []*transport.Endpoint
	authID := uint8(0)
	if withAuth {
		authID = mac.IDUMAC32
	}
	for i := 0; i < mesh.NumNodes(); i++ {
		mesh.HCA(i).PKeyTable.Add(pkey)
		eps = append(eps, transport.NewEndpoint(mesh.HCA(i), transport.Config{
			Registry:  mac.DefaultRegistry(),
			AuthID:    authID,
			KeyLevel:  transport.QPLevel,
			RNG:       rng,
			Directory: dir,
			KeyPair:   kps[i],
		}))
	}
	return s, mesh, eps
}

func scenario(withAuth bool) {
	s, mesh, eps := buildWorld(withAuth)
	app, victim, attacker := eps[0], eps[3], 1

	// The victim registers a buffer; its R_Key would normally be shared
	// only with the application peer, but the paper's threat model says
	// it leaks (plaintext on the wire, or a crashed switch).
	region := victim.RegisterMemory(64)
	copy(region.Data, []byte("account balance: $1,000,000"))

	// Legitimate RC connection app(node0) <-> victim(node3). Under
	// QP-level management the connect handshake carries a fresh pair
	// secret sealed to the victim's public key.
	appQP := app.CreateRCQP(pkey)
	victimQP := victim.CreateRCQP(pkey)
	appQP.AuthRequired = withAuth
	victimQP.AuthRequired = withAuth
	if err := app.ConnectRC(appQP, topology.LIDOf(3), victimQP.N, nil); err != nil {
		log.Fatal(err)
	}
	s.Run()

	// The legitimate peer writes — always works.
	if err := app.RDMAWrite(appQP, region.VA, region.RKey, []byte("legit update --- "), fabric.ClassBestEffort); err != nil {
		log.Fatal(err)
	}
	s.Run()

	// The attacker forges an RDMA write with the stolen R_Key, spoofing
	// the legitimate peer's source LID and QP number and the next
	// expected PSN (snooped from the wire like everything else).
	forged := &packet.Packet{
		LRH:     packet.LRH{SLID: topology.LIDOf(0), DLID: topology.LIDOf(3)},
		BTH:     packet.BTH{OpCode: packet.RCRDMAWriteOnly, PKey: pkey, DestQP: victimQP.N, PSN: 1},
		RETH:    &packet.RETH{VA: region.VA, RKey: region.RKey, DMALen: 10},
		Payload: []byte("PWNED!!!!!"),
	}
	if err := icrc.Seal(forged); err != nil {
		log.Fatal(err)
	}
	mesh.HCA(attacker).Send(&fabric.Delivery{Pkt: forged, Class: fabric.ClassBestEffort, VL: fabric.VLBestEffort})
	s.Run()

	mode := "plain IBA          "
	if withAuth {
		mode = "QP-level ICRC-MAC  "
	}
	fmt.Printf("%s victim memory: %q\n", mode, string(region.Data[:27]))
	fmt.Printf("%s rdma writes applied=%d, rkey checks passed with forged tag rejected=%d\n\n",
		mode, victim.Counters.Get("rdma_writes"), victim.Counters.Get("auth_missing")+victim.Counters.Get("auth_fail"))
}

func main() {
	fmt.Println("Table 3, R_Key row: RDMA write with a stolen R_Key")
	fmt.Println()
	scenario(false)
	scenario(true)
	fmt.Println("With QP-level keys the forged write is dropped at the authentication")
	fmt.Println("check: the attacker holds the R_Key but not the pair's secret key.")
}
