// Quickstart: simulate the paper's 16-node InfiniBand testbed, first
// plain, then under a 4-node DoS attack, then with SIF filtering and
// ICRC-as-MAC authentication enabled — the whole paper in thirty lines.
package main

import (
	"fmt"
	"log"

	"ibasec"
)

func report(label string, res *ibasec.Results) {
	fmt.Printf("%-28s queuing %7.2f us   network %7.2f us   delivered %6d   attack pkts to victims %d\n",
		label,
		res.BestEffort.Queuing.Mean(),
		res.BestEffort.Network.Mean(),
		res.DeliveredLegit,
		res.HCAViolations)
}

func main() {
	cfg := ibasec.DefaultConfig()
	cfg.BestEffortLoad = 0.6
	cfg.Duration = 10 * ibasec.Millisecond
	cfg.Warmup = ibasec.Millisecond

	// 1. The healthy cluster.
	res, err := ibasec.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	report("baseline", res)

	// 2. Four compromised nodes flood random P_Keys at line rate
	//    (paper section 3.2): queuing time explodes, latency barely
	//    moves, and every attack packet crosses the fabric before the
	//    victim HCA drops it.
	cfg.Attackers = 4
	res, err = ibasec.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	report("4 attackers, no filtering", res)

	// 3. Stateful Ingress Filtering: victims trap to the subnet
	//    manager, which arms the attacker's ingress switch.
	cfg.Enforcement = ibasec.SIF
	res, err = ibasec.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	report("4 attackers, SIF", res)
	fmt.Printf("%-28s traps %d, registrations %d, dropped at ingress %d\n",
		"", res.TrapsSent, res.SIFRegistrations, res.FilterDropped)

	// 4. And the authentication mechanism on top: every packet carries
	//    a UMAC-32 tag in its ICRC field, at marginal cost.
	cfg.Auth = ibasec.AuthConfig{Enabled: true, FuncID: ibasec.AuthUMAC32, Level: ibasec.PartitionLevel}
	res, err = ibasec.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	report("  + ICRC-as-MAC (UMAC-32)", res)
	fmt.Printf("%-28s signed %d, verified %d, forged/failed %d\n",
		"", res.PacketsSigned, res.AuthOK, res.AuthFail)
}
