// fabric-tour exercises the library's fabric and transport features that
// back the paper's assumptions: credit-based flow control, the two VL
// arbiters, link failure injection with CRC detection, and the three IBA
// transport services (RC with reliability, UC, UD) including RDMA read
// and write.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ibasec/internal/fabric"
	"ibasec/internal/packet"
	"ibasec/internal/sim"
	"ibasec/internal/topology"
	"ibasec/internal/transport"
)

const pkey = packet.PKey(0x8001)

func buildMesh(params *fabric.Params) (*sim.Simulator, *topology.Mesh, []*transport.Endpoint) {
	s := sim.New()
	mesh := topology.NewMesh(s, params, 2, 2)
	var eps []*transport.Endpoint
	for i := 0; i < mesh.NumNodes(); i++ {
		mesh.HCA(i).PKeyTable.Add(pkey)
		eps = append(eps, transport.NewEndpoint(mesh.HCA(i), transport.Config{
			RNG: rand.New(rand.NewSource(int64(i) + 1)),
		}))
	}
	return s, mesh, eps
}

func arbitrationDemo() {
	fmt.Println("== VL arbitration: strict priority vs IBA weighted tables ==")
	for _, mode := range []fabric.ArbitrationMode{fabric.ArbStrictPriority, fabric.ArbWeighted} {
		params := fabric.DefaultParams()
		params.Arbitration = mode
		params.HighPriLimit = 2
		s, _, eps := buildMesh(params)

		// Backlog both VLs at node 0 toward node 1, then watch the
		// service order.
		rcRT := eps[0].CreateRCQP(pkey)
		peerRT := eps[1].CreateRCQP(pkey)
		rcBE := eps[0].CreateUCQP(pkey)
		peerBE := eps[1].CreateUCQP(pkey)
		var order []string
		peerRT.OnRecv = func([]byte, packet.LID, packet.QPN) { order = append(order, "RT") }
		peerBE.OnRecv = func([]byte, packet.LID, packet.QPN) { order = append(order, "BE") }
		eps[0].ConnectRC(rcRT, topology.LIDOf(1), peerRT.N, nil)
		eps[0].ConnectUC(rcBE, topology.LIDOf(1), peerBE.N, nil)
		s.Run()

		for i := 0; i < 3; i++ {
			eps[0].SendUC(rcBE, make([]byte, 1024), fabric.ClassBestEffort)
		}
		for i := 0; i < 6; i++ {
			eps[0].SendRC(rcRT, make([]byte, 1024), fabric.ClassRealtime)
		}
		s.Run()
		fmt.Printf("  %-16v service order: %v\n", mode, order)
	}
	fmt.Println("  (strict priority drains all realtime first; the weighted arbiter")
	fmt.Println("   lets best-effort through every HighPriLimit packets)")
	fmt.Println()
}

func failureDemo() {
	fmt.Println("== Link bit errors: CRC detection + RC retransmission ==")
	params := fabric.DefaultParams()
	params.BitErrorRate = 4e-6
	params.RNG = rand.New(rand.NewSource(99))
	s, mesh, eps := buildMesh(params)

	a := eps[0].CreateRCQP(pkey)
	b := eps[3].CreateRCQP(pkey)
	delivered := 0
	b.OnRecv = func([]byte, packet.LID, packet.QPN) { delivered++ }
	eps[0].ConnectRC(a, topology.LIDOf(3), b.N, nil)
	s.Run()

	const n = 100
	for i := 0; i < n; i++ {
		if err := eps[0].SendRC(a, make([]byte, 1024), fabric.ClassBestEffort); err != nil {
			log.Fatal(err)
		}
	}
	s.Run()
	var crcDrops uint64
	for _, sw := range mesh.Switches {
		crcDrops += sw.Counters.Get("vcrc_drops")
	}
	for i := 0; i < 4; i++ {
		crcDrops += mesh.HCA(i).Counters.Get("vcrc_drops") + mesh.HCA(i).Counters.Get("icrc_drops")
	}
	fmt.Printf("  sent %d packets over lossy links (BER 4e-6)\n", n)
	fmt.Printf("  CRC checks dropped %d corrupted packets\n", crcDrops)
	fmt.Printf("  reliability layer retransmitted %d, delivered %d/%d in order, broken=%v\n",
		eps[0].Counters.Get("rc_retransmissions"), delivered, n, a.Broken())
	fmt.Println()
}

func rdmaDemo() {
	fmt.Println("== RDMA write + read over RC ==")
	params := fabric.DefaultParams()
	s, _, eps := buildMesh(params)
	a := eps[0].CreateRCQP(pkey)
	b := eps[2].CreateRCQP(pkey)
	eps[0].ConnectRC(a, topology.LIDOf(2), b.N, nil)
	s.Run()

	region := eps[2].RegisterMemory(256)
	if err := eps[0].RDMAWrite(a, region.VA, region.RKey, []byte("written by node 0 via RDMA"), fabric.ClassBestEffort); err != nil {
		log.Fatal(err)
	}
	s.Run()

	var readBack []byte
	if err := eps[0].RDMARead(a, region.VA, region.RKey, 26, fabric.ClassBestEffort, func(data []byte) {
		readBack = data
	}); err != nil {
		log.Fatal(err)
	}
	s.Run()
	fmt.Printf("  wrote then read back: %q\n", readBack)
	fmt.Printf("  responder counters: %s\n", eps[2].Counters)
}

func main() {
	arbitrationDemo()
	failureDemo()
	rdmaDemo()
}
