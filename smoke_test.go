package ibasec

import (
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// Compile-and-run smoke tests: every main package in the repo must
// build and exit cleanly. These catch breakage no unit test sees —
// flag wiring, CSV plumbing, example drift against the facade API.

// buildBinary compiles a main package into the test's temp dir.
func buildBinary(t *testing.T, pkg string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), filepath.Base(pkg))
	out, err := exec.Command("go", "build", "-o", bin, pkg).CombinedOutput()
	if err != nil {
		t.Fatalf("go build %s: %v\n%s", pkg, err, out)
	}
	return bin
}

// runBinary executes bin and returns its combined output.
func runBinary(t *testing.T, bin string, args ...string) string {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	out, err := exec.CommandContext(ctx, bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("%s %s: %v\n%s", filepath.Base(bin), strings.Join(args, " "), err, out)
	}
	return string(out)
}

// TestSmokeIbsim builds the CLI and drives its fast subcommands,
// including one real sweep through the worker pool and CSV writer.
func TestSmokeIbsim(t *testing.T) {
	bin := buildBinary(t, "./cmd/ibsim")

	if out := runBinary(t, bin, "config"); !strings.Contains(out, "Table 1") {
		t.Errorf("config output missing header:\n%s", out)
	}
	if out := runBinary(t, bin, "table2"); !strings.Contains(out, "SIF") {
		t.Errorf("table2 output missing SIF row:\n%s", out)
	}
	if out := runBinary(t, bin, "-quick", "trace", "-events", "5"); !strings.Contains(out, "Packet-lifecycle trace") {
		t.Errorf("trace output missing header:\n%s", out)
	}
	if testing.Short() {
		return
	}
	csvDir := t.TempDir()
	out := runBinary(t, bin, "-quick", "-jobs", "2", "-results", "", "-csv", csvDir, "fig6")
	if !strings.Contains(out, "WithKey") {
		t.Errorf("fig6 output missing WithKey rows:\n%s", out)
	}
	if _, err := os.Stat(filepath.Join(csvDir, "fig6.csv")); err != nil {
		t.Errorf("fig6.csv not written: %v", err)
	}
	if out := runBinary(t, bin, "attacks"); !strings.Contains(out, "M_Key") {
		t.Errorf("attacks output missing M_Key threat:\n%s", out)
	}
}

// TestSmokeExamples builds every example and runs it to completion.
// The two long-running walkthroughs are skipped in -short mode but
// still compiled.
func TestSmokeExamples(t *testing.T) {
	slow := map[string]bool{"quickstart": true, "dos-defense": true}
	for _, name := range []string{
		"dos-defense", "fabric-tour", "mac-packet",
		"quickstart", "secure-rdma", "subnet-bringup",
	} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			bin := buildBinary(t, "./examples/"+name)
			if testing.Short() && slow[name] {
				t.Skip("built only: multi-second walkthrough")
			}
			if out := runBinary(t, bin); len(out) == 0 {
				t.Error("example produced no output")
			}
		})
	}
}
